//! Guard index: sublinear rule-count dispatch.
//!
//! The paper's scalability claim (§2.1, §6.2.1) is that per-event overhead is
//! "mainly a function of the number of rules" — which is exactly the problem
//! once thousands of rules subscribe to one hot event. This module builds a
//! discrimination network (a pub-sub / Rete-alpha-style matching index) over
//! the *cheap prefix* of each rule's condition so that one index probe per
//! event yields the candidate set and only candidates run the condition VM.
//!
//! ## Soundness contract
//!
//! A rule may be pruned only when a violated guard implies the whole
//! condition cannot evaluate to `TRUE` *and* cannot evaluate to `Err` —
//! skipping an evaluation that would have recorded an error would make the
//! index observable in rule statistics. Both halves are structural:
//!
//! * **No-fire**: every guard is one conjunct of the condition's top-level
//!   `AND` chain, of the shape `attr <op> const` / `attr IN (…)`. Under SQL
//!   three-valued logic a violated conjunct evaluates to `FALSE` or `NULL`,
//!   and `AND` can then never yield `TRUE` — regardless of what the other
//!   conjuncts do.
//! * **No-error**: a rule is indexed only when its condition is *infallible
//!   in context*: no LAT reads (`ROp::LatCol` can raise `NoLatRow` semantics
//!   and reads mutable state), no checked arithmetic (`+ - * /`, unary `-`),
//!   and every attribute read resolves against a payload class the probe has
//!   verified present with sufficient width ([`GuardIndex::required`]). Any
//!   other rule is **residual**: always a candidate, never mis-pruned.
//!
//! Range-guard soundness additionally leans on the interval machinery of
//! `sqlcm-analyze` ([`Interval`]): each guard carries its widened numeric
//! interval, the per-attribute sweep is sorted by `Interval::lo`, and a
//! numeric probe value uses `Interval::contains` as a superset pre-filter
//! (closed, f64-widened, so it can only over-admit) before the exact
//! [`Value::cmp`] check that mirrors the VM's comparison semantics bit for
//! bit. Non-numeric probe values (SQL's cross-type ordering is total) skip
//! the sweep shortcut and take the exact path.
//!
//! The index lives inside the immutable [`crate::plan::DispatchPlan`], so
//! RCU publication, breaker quarantine, and rule churn rebuild it for free,
//! and probing allocates nothing.

use std::collections::HashMap;

use sqlcm_analyze::intervals::Interval;
use sqlcm_common::Value;
use sqlcm_sql::{BinOp, NodeId, UnaryOp};

use crate::ir::{CondIr, ROp};
use crate::objects::{ClassName, Object};
use crate::plan::PlanRule;

/// One inclusive-or-strict endpoint of a range guard, kept as the exact
/// [`Value`] so admission checks use the VM's own comparison.
#[derive(Debug, Clone)]
pub(crate) struct Bound {
    pub value: Value,
    pub strict: bool,
}

/// The guard extracted from one rule, kept per rule for trace explanations.
#[derive(Debug, Clone)]
pub(crate) enum RuleGuard {
    /// `attr = const` or `attr IN (…)`: candidate iff the attribute value is
    /// one of `values` (non-null; a null literal can never compare `TRUE`).
    Eq {
        class: ClassName,
        attr: usize,
        values: Vec<Value>,
    },
    /// Merged numeric range over one attribute: candidate iff the value is
    /// admitted by both endpoints.
    Range {
        class: ClassName,
        attr: usize,
        lo: Option<Bound>,
        hi: Option<Bound>,
    },
    /// Guard proved empty at build (e.g. `x IN (NULL)`, `x > 5 AND x < 3`):
    /// the rule can never fire and is always pruned.
    Never,
}

/// All equality guards over one `(class, attribute)`, probed with a single
/// hash lookup. [`Value`]'s `Hash`/`Eq` are consistent with the VM's `=`
/// (`Int(2)` and `Float(2.0)` share a bucket and compare equal).
struct EqGroup {
    class: ClassName,
    attr: usize,
    map: HashMap<Value, Vec<u32>>,
}

/// All range guards over one `(class, attribute)`, swept flat in ascending
/// `iv.lo` order so the scan stops at the first lower bound above the value.
struct RangeGroup {
    class: ClassName,
    attr: usize,
    guards: Vec<RangeGuard>,
}

struct RangeGuard {
    rule: u32,
    lo: Option<Bound>,
    hi: Option<Bound>,
    /// Widened numeric summary (strictness dropped, endpoints rounded
    /// outward by the f64 cast's monotonicity): a superset of the exact
    /// admission set, so `!iv.contains(v)` soundly rejects.
    iv: Interval,
}

impl RangeGuard {
    /// Exact admission via [`Value::cmp`] — the same total order the VM's
    /// comparison operators use, so cross-type probes (e.g. a text value
    /// against a numeric bound) agree with evaluation.
    fn admits(&self, v: &Value) -> bool {
        if let Some(b) = &self.lo {
            match v.cmp(&b.value) {
                std::cmp::Ordering::Less => return false,
                std::cmp::Ordering::Equal if b.strict => return false,
                _ => {}
            }
        }
        if let Some(b) = &self.hi {
            match v.cmp(&b.value) {
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal if b.strict => return false,
                _ => {}
            }
        }
        true
    }
}

/// A guard atom lifted from one top-level conjunct.
enum Atom {
    Eq {
        class: ClassName,
        attr: usize,
        values: Vec<Value>,
    },
    Range {
        class: ClassName,
        attr: usize,
        lo: Option<Bound>,
        hi: Option<Bound>,
    },
}

/// Why a rule stayed residual — surfaced by the analyzer's cost model and
/// useful in tests; the hot path only cares about the bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResidualReason {
    /// No condition at all: the rule fires on every event and must run.
    Unconditional,
    /// Carried as `broken` (condition LAT dropped) — evaluation must run to
    /// record the error.
    Broken,
    /// Condition reads LAT state: fallible and mutable mid-event.
    ReadsLat,
    /// Condition contains checked arithmetic that can error.
    FallibleArithmetic,
    /// Condition reads a class outside the event payload (per-combination
    /// binding, not probeable once per event).
    NonPayloadClass,
    /// Infallible, but no top-level conjunct has an indexable shape.
    NoGuardAtom,
}

/// The per-event guard index, built once per [`crate::plan::DispatchPlan`]
/// and probed once per dispatched event.
pub(crate) struct GuardIndex {
    /// Per payload class any indexed rule reads: minimum attribute-vector
    /// width its condition assumes. A probe over objects missing a class (or
    /// narrower than assumed — possible for synthetic payloads) is unusable
    /// and every rule becomes a candidate, keeping indexed conditions
    /// genuinely infallible whenever pruning happens.
    required: Vec<(ClassName, usize)>,
    eq_groups: Vec<EqGroup>,
    range_groups: Vec<RangeGroup>,
    /// Bitset of residual rules — the probe's starting candidate set.
    residual: Vec<u64>,
    pub indexed_rules: u32,
    pub residual_rules: u32,
    /// Per-rule extracted guard (`None` = residual), for explanations.
    guards: Vec<Option<RuleGuard>>,
}

impl GuardIndex {
    /// Build the index for one event's rules. Returns `None` when no rule is
    /// indexable — dispatch then skips probing entirely. Plans with a single
    /// rule are never indexed: a probe cannot beat a one-rule scan, and
    /// skipping it keeps small monitors at exactly their pre-index cost.
    pub fn build(rules: &[PlanRule], payload: &[ClassName]) -> Option<GuardIndex> {
        let n = rules.len();
        if n < 2 {
            return None;
        }
        let mut idx = GuardIndex {
            required: Vec::new(),
            eq_groups: Vec::new(),
            range_groups: Vec::new(),
            residual: vec![0u64; n.div_ceil(64).max(1)],
            indexed_rules: 0,
            residual_rules: 0,
            guards: Vec::with_capacity(n),
        };
        let mut width: HashMap<ClassName, usize> = HashMap::new();
        for (ri, pr) in rules.iter().enumerate() {
            let extracted = match classify_rule(pr, payload) {
                Ok(g) => g,
                Err(_) => {
                    idx.residual[ri >> 6] |= 1 << (ri & 63);
                    idx.residual_rules += 1;
                    idx.guards.push(None);
                    continue;
                }
            };
            idx.indexed_rules += 1;
            // Every attribute the indexed condition reads contributes to the
            // probe's required-width check, making each read provably
            // in-range before any pruning is trusted; `cond_classes` rides
            // along (width 0 = presence only) so a pruned rule is always one
            // the fast path would have evaluated exactly once.
            if let Some(cond) = &pr.reg.compiled {
                for op in &cond.ops {
                    if let ROp::Attr { class, index } = op {
                        let w = width.entry(class.clone()).or_default();
                        *w = (*w).max(index + 1);
                    }
                }
            }
            for class in &pr.reg.cond_classes {
                width.entry(class.clone()).or_default();
            }
            idx.install(ri as u32, extracted);
        }
        if idx.indexed_rules == 0 {
            return None;
        }
        let mut required: Vec<(ClassName, usize)> = width.into_iter().collect();
        required.sort_by_key(|a| a.0.to_string());
        idx.required = required;
        for g in &mut idx.range_groups {
            g.guards.sort_by(|a, b| a.iv.lo.total_cmp(&b.iv.lo));
        }
        Some(idx)
    }

    fn install(&mut self, rule: u32, guard: RuleGuard) {
        match &guard {
            RuleGuard::Eq {
                class,
                attr,
                values,
            } => {
                if values.is_empty() {
                    // `x = NULL` / `x IN (NULL)`: no value compares TRUE.
                    self.guards.push(Some(RuleGuard::Never));
                    return;
                }
                let gi = match self
                    .eq_groups
                    .iter()
                    .position(|g| g.class == *class && g.attr == *attr)
                {
                    Some(i) => i,
                    None => {
                        self.eq_groups.push(EqGroup {
                            class: class.clone(),
                            attr: *attr,
                            map: HashMap::new(),
                        });
                        self.eq_groups.len() - 1
                    }
                };
                for v in values {
                    self.eq_groups[gi]
                        .map
                        .entry(v.clone())
                        .or_default()
                        .push(rule);
                }
            }
            RuleGuard::Range {
                class,
                attr,
                lo,
                hi,
            } => {
                // Exact emptiness first (`x > 5 AND x < 3`): the rule can
                // never fire, prune it unconditionally.
                if let (Some(l), Some(h)) = (lo, hi) {
                    match l.value.cmp(&h.value) {
                        std::cmp::Ordering::Greater => {
                            self.guards.push(Some(RuleGuard::Never));
                            return;
                        }
                        std::cmp::Ordering::Equal if l.strict || h.strict => {
                            self.guards.push(Some(RuleGuard::Never));
                            return;
                        }
                        _ => {}
                    }
                }
                let iv = Interval {
                    lo: lo
                        .as_ref()
                        .and_then(|b| b.value.as_f64())
                        .unwrap_or(f64::NEG_INFINITY),
                    hi: hi
                        .as_ref()
                        .and_then(|b| b.value.as_f64())
                        .unwrap_or(f64::INFINITY),
                };
                let gi = match self
                    .range_groups
                    .iter()
                    .position(|g| g.class == *class && g.attr == *attr)
                {
                    Some(i) => i,
                    None => {
                        self.range_groups.push(RangeGroup {
                            class: class.clone(),
                            attr: *attr,
                            guards: Vec::new(),
                        });
                        self.range_groups.len() - 1
                    }
                };
                self.range_groups[gi].guards.push(RangeGuard {
                    rule,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    iv,
                });
            }
            RuleGuard::Never => {}
        }
        self.guards.push(Some(guard));
    }

    /// Words a candidate bitset for this index needs.
    pub fn words(&self) -> usize {
        self.residual.len()
    }

    /// Probe the index for one event. On success `bits` holds the candidate
    /// set (residual rules plus every rule whose guard admits the payload)
    /// and pruned rules are provably non-firing. Returns `false` when the
    /// payload doesn't satisfy [`GuardIndex::required`] — the caller must
    /// then treat every rule as a candidate (`bits` is left unspecified).
    /// Allocation-free.
    pub fn probe(&self, objects: &[Object], bits: &mut [u64]) -> bool {
        debug_assert_eq!(bits.len(), self.residual.len());
        for (class, want) in &self.required {
            match objects.iter().find(|o| o.class == *class) {
                Some(o) if o.values().len() >= *want => {}
                _ => return false,
            }
        }
        bits.copy_from_slice(&self.residual);
        for g in &self.eq_groups {
            let Some(obj) = objects.iter().find(|o| o.class == g.class) else {
                return false;
            };
            let v = &obj.values()[g.attr];
            if v.is_null() {
                // NULL never compares equal: every guard in the group is
                // violated, all its rules stay pruned.
                continue;
            }
            if let Some(rules) = g.map.get(v) {
                for &r in rules {
                    bits[(r >> 6) as usize] |= 1 << (r & 63);
                }
            }
        }
        for g in &self.range_groups {
            let Some(obj) = objects.iter().find(|o| o.class == g.class) else {
                return false;
            };
            let v = &obj.values()[g.attr];
            if v.is_null() {
                continue;
            }
            // Numeric fast path: the sweep is sorted by widened `iv.lo`, and
            // the f64 cast is monotone, so once a lower bound exceeds the
            // value no later guard can admit it. A NaN value never satisfies
            // `lo > v` and falls through to the exact check (NaN sorts above
            // every number in `Value::cmp`, like the VM). Non-numeric values
            // (totally ordered across types) take the exact check only.
            let vf = match v {
                Value::Int(i) => Some(*i as f64),
                Value::Float(f) => Some(*f),
                _ => None,
            };
            for rg in &g.guards {
                if let Some(vf) = vf {
                    if rg.iv.lo > vf {
                        break;
                    }
                    if !rg.iv.contains(vf) {
                        continue;
                    }
                }
                if rg.admits(v) {
                    bits[(rg.rule >> 6) as usize] |= 1 << (rg.rule & 63);
                }
            }
        }
        true
    }

    /// Human-readable reason rule `rule` was pruned for this payload, for
    /// sampled traces. Only called off the fast path.
    pub fn explain(&self, rule: usize, objects: &[Object]) -> String {
        let attr_of = |class: &ClassName, attr: usize| -> (String, String) {
            match objects.iter().find(|o| o.class == *class) {
                Some(o) => (
                    o.attribute_names()
                        .get(attr)
                        .cloned()
                        .unwrap_or_else(|| format!("#{attr}")),
                    o.values()
                        .get(attr)
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "?".into()),
                ),
                None => (format!("#{attr}"), "?".into()),
            }
        };
        match self.guards.get(rule).and_then(|g| g.as_ref()) {
            Some(RuleGuard::Eq {
                class,
                attr,
                values,
            }) => {
                let (name, val) = attr_of(class, *attr);
                let set = values
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("pruned by guard index: {class}.{name}={val} not in {{{set}}}")
            }
            Some(RuleGuard::Range {
                class,
                attr,
                lo,
                hi,
            }) => {
                let (name, val) = attr_of(class, *attr);
                let lo_s = match lo {
                    Some(b) => format!("{}{}", if b.strict { '(' } else { '[' }, b.value),
                    None => "(-∞".into(),
                };
                let hi_s = match hi {
                    Some(b) => format!("{}{}", b.value, if b.strict { ')' } else { ']' }),
                    None => "∞)".into(),
                };
                format!("pruned by guard index: {class}.{name}={val} outside {lo_s},{hi_s}")
            }
            Some(RuleGuard::Never) => {
                "pruned by guard index: guard is unsatisfiable (condition can never hold)".into()
            }
            None => "pruned by guard index".into(),
        }
    }

    #[cfg(test)]
    fn guard_of(&self, rule: usize) -> Option<&RuleGuard> {
        self.guards[rule].as_ref()
    }
}

/// Classify one planned rule: an extracted guard, or the reason it stays
/// residual.
pub(crate) fn classify_rule(
    pr: &PlanRule,
    payload: &[ClassName],
) -> Result<RuleGuard, ResidualReason> {
    if pr.broken.is_some() {
        return Err(ResidualReason::Broken);
    }
    let (Some(cond), Some(_)) = (&pr.reg.compiled, &pr.program) else {
        return Err(ResidualReason::Unconditional);
    };
    // `cond_classes` is derived from the source AST (pre-fold): requiring it
    // to sit inside the payload too guarantees an indexed rule always takes
    // the single-combination fast path, so the pruned path's "one counted
    // evaluation" bookkeeping matches what evaluation would have recorded.
    if !pr.reg.cond_classes.iter().all(|c| payload.contains(c)) {
        return Err(ResidualReason::NonPayloadClass);
    }
    classify_cond(cond, payload)
}

/// Pure classification over a resolved condition; shared with unit tests.
pub(crate) fn classify_cond(
    cond: &CondIr,
    payload: &[ClassName],
) -> Result<RuleGuard, ResidualReason> {
    // Infallible-in-context check over the whole (dense) arena: any fallible
    // node anywhere — even under a never-taken branch — keeps the rule
    // residual, because the VM's error contract evaluates both AND/OR
    // operands unless provably infallible.
    for op in &cond.ops {
        match op {
            ROp::LatCol { .. } => return Err(ResidualReason::ReadsLat),
            ROp::Attr { class, .. } if !payload.contains(class) => {
                return Err(ResidualReason::NonPayloadClass)
            }
            ROp::Unary {
                op: UnaryOp::Neg, ..
            } => return Err(ResidualReason::FallibleArithmetic),
            ROp::Binary {
                op: BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div,
                ..
            } => return Err(ResidualReason::FallibleArithmetic),
            _ => {}
        }
    }
    let mut conj = Vec::new();
    conjuncts(cond, cond.root, &mut conj);
    // One guard per rule: the first equality atom wins (a point probe beats
    // a range sweep); otherwise every range atom over the first ranged
    // attribute is merged into one interval.
    let mut range: Option<(ClassName, usize, Option<Bound>, Option<Bound>)> = None;
    for id in conj {
        match atom_of(cond, id) {
            Some(Atom::Eq {
                class,
                attr,
                values,
            }) => {
                return Ok(RuleGuard::Eq {
                    class,
                    attr,
                    values,
                })
            }
            Some(Atom::Range {
                class,
                attr,
                lo,
                hi,
            }) => match &mut range {
                None => range = Some((class, attr, lo, hi)),
                Some((c, a, rlo, rhi)) if *c == class && *a == attr => {
                    if let Some(b) = lo {
                        merge_lo(rlo, b);
                    }
                    if let Some(b) = hi {
                        merge_hi(rhi, b);
                    }
                }
                _ => {}
            },
            None => {}
        }
    }
    match range {
        Some((class, attr, lo, hi)) => Ok(RuleGuard::Range {
            class,
            attr,
            lo,
            hi,
        }),
        None => Err(ResidualReason::NoGuardAtom),
    }
}

/// Tighter (larger) lower bound wins; at a tie, strict dominates.
fn merge_lo(cur: &mut Option<Bound>, new: Bound) {
    match cur {
        None => *cur = Some(new),
        Some(b) => match new.value.cmp(&b.value) {
            std::cmp::Ordering::Greater => *cur = Some(new),
            std::cmp::Ordering::Equal => b.strict |= new.strict,
            std::cmp::Ordering::Less => {}
        },
    }
}

/// Tighter (smaller) upper bound wins; at a tie, strict dominates.
fn merge_hi(cur: &mut Option<Bound>, new: Bound) {
    match cur {
        None => *cur = Some(new),
        Some(b) => match new.value.cmp(&b.value) {
            std::cmp::Ordering::Less => *cur = Some(new),
            std::cmp::Ordering::Equal => b.strict |= new.strict,
            std::cmp::Ordering::Greater => {}
        },
    }
}

/// Split the top-level `AND` chain into conjunct roots.
fn conjuncts(cond: &CondIr, id: NodeId, out: &mut Vec<NodeId>) {
    if let ROp::Binary {
        left,
        op: BinOp::And,
        right,
    } = cond.op(id)
    {
        conjuncts(cond, *left, out);
        conjuncts(cond, *right, out);
    } else {
        out.push(id);
    }
}

/// Mirror of the comparison with operands swapped (`5 < attr` ⇒ `attr > 5`).
fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::GtEq => BinOp::LtEq,
        _ => return None,
    })
}

/// Lift one conjunct into a guard atom, if it has an indexable shape.
fn atom_of(cond: &CondIr, id: NodeId) -> Option<Atom> {
    match cond.op(id) {
        ROp::Binary { left, op, right } => {
            let (class, attr, cval, op) = match (cond.op(*left), cond.op(*right)) {
                (ROp::Attr { class, index }, ROp::Const(c)) => {
                    (class, *index, cond.consts[*c as usize].clone(), *op)
                }
                (ROp::Const(c), ROp::Attr { class, index }) => {
                    (class, *index, cond.consts[*c as usize].clone(), flip(*op)?)
                }
                _ => return None,
            };
            match op {
                BinOp::Eq => Some(Atom::Eq {
                    class: class.clone(),
                    attr,
                    values: if cval.is_null() { vec![] } else { vec![cval] },
                }),
                BinOp::Lt | BinOp::Gt | BinOp::LtEq | BinOp::GtEq => {
                    // Range guards index numeric bounds only: the f64 sweep
                    // key is only order-consistent with `Value::cmp` within
                    // the numeric rank. (NaN bounds would also poison the
                    // sort order.)
                    match cval {
                        Value::Int(_) => {}
                        Value::Float(f) if !f.is_nan() => {}
                        _ => return None,
                    }
                    let bound = |strict| {
                        Some(Bound {
                            value: cval.clone(),
                            strict,
                        })
                    };
                    let (lo, hi) = match op {
                        BinOp::Gt => (bound(true), None),
                        BinOp::GtEq => (bound(false), None),
                        BinOp::Lt => (None, bound(true)),
                        BinOp::LtEq => (None, bound(false)),
                        _ => unreachable!(),
                    };
                    Some(Atom::Range {
                        class: class.clone(),
                        attr,
                        lo,
                        hi,
                    })
                }
                _ => None,
            }
        }
        ROp::InList {
            expr,
            list,
            negated: false,
        } => {
            let ROp::Attr { class, index } = cond.op(*expr) else {
                return None;
            };
            let mut values = Vec::new();
            for m in &cond.lists[*list as usize] {
                let ROp::Const(c) = cond.op(*m) else {
                    return None;
                };
                let v = cond.consts[*c as usize].clone();
                if !v.is_null() {
                    values.push(v);
                }
            }
            Some(Atom::Eq {
                class: class.clone(),
                attr: *index,
                values,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::query_object;
    use sqlcm_common::QueryInfo;
    use std::collections::HashMap as Map;

    fn cond(src: &str) -> CondIr {
        let ast = sqlcm_sql::parse_expression(src).unwrap();
        let ir = sqlcm_sql::ExprIr::lower(&ast).fold();
        CondIr::from_ir(&ir, &Map::new(), &[]).unwrap()
    }

    fn classify(src: &str) -> Result<RuleGuard, ResidualReason> {
        classify_cond(&cond(src), &[ClassName::Query])
    }

    #[test]
    fn equality_and_in_atoms_extract() {
        match classify("Query.User = 'bob' AND Query.Duration > 1").unwrap() {
            RuleGuard::Eq { values, .. } => {
                assert_eq!(values, vec![Value::Text("bob".into())]);
            }
            g => panic!("expected eq guard, got {g:?}"),
        }
        match classify("Query.ID IN (1, 2, 3)").unwrap() {
            RuleGuard::Eq { values, .. } => assert_eq!(values.len(), 3),
            g => panic!("expected eq guard, got {g:?}"),
        }
        // Constant-on-the-left comparisons flip.
        match classify("100 <= Query.Duration").unwrap() {
            RuleGuard::Range { lo: Some(b), .. } => {
                assert_eq!(b.value, Value::Int(100));
                assert!(!b.strict);
            }
            g => panic!("expected range guard, got {g:?}"),
        }
    }

    #[test]
    fn range_atoms_merge_to_tightest_interval() {
        match classify("Query.Duration > 100 AND Query.Duration <= 500 AND Query.Duration > 50")
            .unwrap()
        {
            RuleGuard::Range {
                lo: Some(lo),
                hi: Some(hi),
                ..
            } => {
                assert_eq!(lo.value, Value::Int(100));
                assert!(lo.strict);
                assert_eq!(hi.value, Value::Int(500));
                assert!(!hi.strict);
            }
            g => panic!("expected bounded range, got {g:?}"),
        }
    }

    #[test]
    fn residual_reasons_are_structural() {
        assert_eq!(
            classify_cond(&cond("Query.Duration > 1"), &[ClassName::Session]).unwrap_err(),
            ResidualReason::NonPayloadClass
        );
        assert_eq!(
            classify("Query.Duration * 2 > 1").unwrap_err(),
            ResidualReason::FallibleArithmetic
        );
        assert_eq!(
            classify("Query.User LIKE 'a%'").unwrap_err(),
            ResidualReason::NoGuardAtom
        );
        // OR at the top level: neither side is a guaranteed conjunct.
        assert_eq!(
            classify("Query.User = 'a' OR Query.Duration > 1").unwrap_err(),
            ResidualReason::NoGuardAtom
        );
    }

    fn probe_one(idx: &GuardIndex, objects: &[Object]) -> Vec<usize> {
        let mut bits = vec![0u64; idx.words()];
        assert!(idx.probe(objects, &mut bits));
        (0..idx.guards.len())
            .filter(|&i| bits[i >> 6] & (1 << (i & 63)) != 0)
            .collect()
    }

    /// Build an index straight from conditions (no plan machinery) by going
    /// through `install`, mirroring what `GuardIndex::build` does per rule.
    fn index_of(conds: &[&str]) -> GuardIndex {
        let payload = [ClassName::Query];
        let mut idx = GuardIndex {
            required: Vec::new(),
            eq_groups: Vec::new(),
            range_groups: Vec::new(),
            residual: vec![0u64; conds.len().div_ceil(64).max(1)],
            indexed_rules: 0,
            residual_rules: 0,
            guards: Vec::new(),
        };
        let mut width: Map<ClassName, usize> = Map::new();
        for (ri, src) in conds.iter().enumerate() {
            let c = cond(src);
            match classify_cond(&c, &payload) {
                Ok(g) => {
                    idx.indexed_rules += 1;
                    for op in &c.ops {
                        if let ROp::Attr { class, index } = op {
                            let w = width.entry(class.clone()).or_default();
                            *w = (*w).max(index + 1);
                        }
                    }
                    idx.install(ri as u32, g);
                }
                Err(_) => {
                    idx.residual[ri >> 6] |= 1 << (ri & 63);
                    idx.residual_rules += 1;
                    idx.guards.push(None);
                }
            }
        }
        idx.required = width.into_iter().collect();
        for g in &mut idx.range_groups {
            g.guards.sort_by(|a, b| a.iv.lo.total_cmp(&b.iv.lo));
        }
        idx
    }

    fn query(user: &str, duration_micros: u64) -> Object {
        let mut q = QueryInfo::synthetic(1, "SELECT 1");
        q.user = user.into();
        q.duration_micros = duration_micros;
        query_object(&q)
    }

    #[test]
    fn probe_selects_matching_rules_only() {
        let idx = index_of(&[
            "Query.User = 'alice'",
            "Query.User = 'bob'",
            "Query.Duration > 1",   // seconds: matches long queries
            "Query.User LIKE 'a%'", // residual
            "Query.Duration > 3 AND Query.Duration < 2", // empty: never
        ]);
        assert_eq!(idx.indexed_rules, 4);
        assert_eq!(idx.residual_rules, 1);
        assert!(matches!(idx.guard_of(4), Some(RuleGuard::Never)));
        let fast = query("alice", 100);
        assert_eq!(probe_one(&idx, &[fast]), vec![0, 3]);
        let slow = query("carol", 2_500_000);
        assert_eq!(probe_one(&idx, &[slow]), vec![2, 3]);
    }

    #[test]
    fn probe_without_required_class_is_unusable() {
        let idx = index_of(&["Query.User = 'alice'"]);
        let mut bits = vec![0u64; idx.words()];
        assert!(!idx.probe(&[], &mut bits), "missing payload class");
    }

    #[test]
    fn explain_names_the_violated_guard() {
        let idx = index_of(&["Query.Duration >= 100"]);
        let obj = query("alice", 5);
        let mut bits = vec![0u64; idx.words()];
        assert!(idx.probe(std::slice::from_ref(&obj), &mut bits));
        assert_eq!(bits[0], 0);
        let why = idx.explain(0, &[obj]);
        assert!(
            why.contains("pruned by guard index") && why.contains("outside [100,∞)"),
            "{why}"
        );
    }
}
