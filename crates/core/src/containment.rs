//! Fault containment: per-rule circuit breakers and the overload ladder.
//!
//! The paper's synchronous evaluation model (§5) means a misbehaving rule —
//! one whose condition or actions start erroring, or whose latency explodes —
//! taxes the monitored workload directly. This module bounds that damage:
//!
//! * **Per-rule circuit breakers** ([`RuleBreaker`]) keep a sliding window of
//!   the last [`BREAKER_WINDOW`] evaluation outcomes in a single atomic
//!   bitmask. When the error (or over-latency-budget) count within the window
//!   crosses the configured threshold, the rule trips `Closed → Open`: the
//!   next [`crate::plan::DispatchPlan`] rebuild quarantines it out of every
//!   event plan (reusing the RCU plan swap — the hot path never checks a
//!   quarantine list, the tripped rule simply is not in the plan). After
//!   `cooldown_micros` the breaker moves `Open → HalfOpen` and the rule is
//!   re-admitted on probation: exactly one trial evaluation is let through;
//!   success closes the breaker, failure re-opens it and restarts the
//!   cooldown.
//! * **The overload ladder** ([`OverloadPolicy`]) estimates the event rate at
//!   a fixed checkpoint cadence (every [`LADDER_CHECK_INTERVAL`] events) and
//!   steps through degradation stages with hysteresis:
//!   `Full → ShedTracing → SampleLowPriority → Tightened`. Stage 1 suppresses
//!   causal-trace sampling, stage 2 samples low-priority rules 1-in-2^k,
//!   stage 3 halves every breaker threshold so flaky rules quarantine faster.
//!   Every transition is counted, flight-recorded, and (when a rule
//!   subscribes) dispatched as a synthetic `Monitor`-class event.
//!
//! Healthy-path cost discipline: recording an outcome is a handful of relaxed
//! atomic operations — no locks, no allocation, no clock read (the clock is
//! consulted only when a breaker actually trips or a quarantined rule is
//! scanned for re-admission). The breaker-differential test pins that a
//! breaker-enabled healthy run is bit-identical to a disabled one.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};

use parking_lot::RwLock;
use sqlcm_telemetry::ShardedCounter;

/// Sliding-window width in outcomes (one bit per outcome; fixed so the whole
/// window lives in one `AtomicU64`).
pub const BREAKER_WINDOW: u32 = 64;

/// Events between containment checkpoints (re-admission scan + ladder step).
/// Power of two: the gate is a mask test on the global event counter.
pub const LADDER_CHECK_INTERVAL: u64 = 1024;

/// Breaker state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the sliding window.
    Closed,
    /// Tripped: the rule is quarantined out of the dispatch plan until the
    /// cooldown expires.
    Open,
    /// Probation: the rule is back in the plan, but only one trial
    /// evaluation is admitted at a time.
    HalfOpen,
}

impl BreakerState {
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

const ST_CLOSED: u8 = 0;
const ST_OPEN: u8 = 1;
const ST_HALF_OPEN: u8 = 2;

/// Per-rule breaker thresholds. All counts are *within the sliding window of
/// the last [`BREAKER_WINDOW`] outcomes*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Errored outcomes within the window that trip the breaker.
    pub error_threshold: u32,
    /// Outcomes over the latency budget within the window that trip it.
    pub slow_threshold: u32,
    /// Outcomes that must have been recorded (since the last reset) before
    /// the breaker may trip — a fresh rule is not tripped by its first error.
    pub min_outcomes: u32,
    /// Per-evaluation latency budget in nanoseconds; `None` disables the
    /// latency dimension. Latency is only observed when telemetry is on
    /// (the breaker never adds clock reads of its own).
    pub latency_budget_nanos: Option<u64>,
    /// Quarantine duration before the `Open → HalfOpen` probation.
    pub cooldown_micros: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            error_threshold: 32,
            slow_threshold: 48,
            min_outcomes: BREAKER_WINDOW,
            latency_budget_nanos: None,
            cooldown_micros: 5_000_000,
        }
    }
}

/// The per-rule breaker. Lives on [`crate::plan::Registered`], so it survives
/// plan rebuilds, enable/disable cycles, and LAT churn.
pub(crate) struct RuleBreaker {
    state: AtomicU8,
    /// Outcomes recorded since the last window reset (positions the ring).
    seq: AtomicU64,
    /// Ring of the last 64 outcomes: bit set ⇒ errored.
    err_mask: AtomicU64,
    /// Ring of the last 64 outcomes: bit set ⇒ over the latency budget.
    slow_mask: AtomicU64,
    /// When an `Open` breaker may move to `HalfOpen` (clock micros).
    reopen_at: AtomicU64,
    /// `HalfOpen` trial admission latch (one trial at a time).
    trial_inflight: AtomicBool,
    /// Times this breaker tripped `Closed → Open` or re-opened from a failed
    /// trial.
    trips: AtomicU64,
    /// Evaluations skipped because the breaker was not `Closed`.
    skipped: AtomicU64,
    // Config knobs as atomics: per-rule overrides are lock-free and the hot
    // path reads them relaxed.
    error_threshold: AtomicU32,
    slow_threshold: AtomicU32,
    min_outcomes: AtomicU32,
    /// 0 ⇒ latency dimension off.
    latency_budget_nanos: AtomicU64,
    cooldown_micros: AtomicU64,
}

/// What the dispatch path should do with one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerGate {
    /// Evaluate normally.
    Proceed,
    /// Evaluate as the half-open trial: the outcome decides close vs re-open.
    Trial,
    /// Skip the evaluation (quarantined, or a trial is already in flight).
    Skip,
}

impl RuleBreaker {
    pub fn new(cfg: BreakerConfig) -> RuleBreaker {
        let b = RuleBreaker {
            state: AtomicU8::new(ST_CLOSED),
            seq: AtomicU64::new(0),
            err_mask: AtomicU64::new(0),
            slow_mask: AtomicU64::new(0),
            reopen_at: AtomicU64::new(0),
            trial_inflight: AtomicBool::new(false),
            trips: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            error_threshold: AtomicU32::new(0),
            slow_threshold: AtomicU32::new(0),
            min_outcomes: AtomicU32::new(0),
            latency_budget_nanos: AtomicU64::new(0),
            cooldown_micros: AtomicU64::new(0),
        };
        b.set_config(cfg);
        b
    }

    pub fn set_config(&self, cfg: BreakerConfig) {
        self.error_threshold
            .store(cfg.error_threshold.max(1), Ordering::Relaxed);
        self.slow_threshold
            .store(cfg.slow_threshold.max(1), Ordering::Relaxed);
        self.min_outcomes.store(cfg.min_outcomes, Ordering::Relaxed);
        self.latency_budget_nanos
            .store(cfg.latency_budget_nanos.unwrap_or(0), Ordering::Relaxed);
        self.cooldown_micros
            .store(cfg.cooldown_micros, Ordering::Relaxed);
    }

    pub fn config(&self) -> BreakerConfig {
        let budget = self.latency_budget_nanos.load(Ordering::Relaxed);
        BreakerConfig {
            error_threshold: self.error_threshold.load(Ordering::Relaxed),
            slow_threshold: self.slow_threshold.load(Ordering::Relaxed),
            min_outcomes: self.min_outcomes.load(Ordering::Relaxed),
            latency_budget_nanos: (budget > 0).then_some(budget),
            cooldown_micros: self.cooldown_micros.load(Ordering::Relaxed),
        }
    }

    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Relaxed) {
            ST_OPEN => BreakerState::Open,
            ST_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    pub fn is_open(&self) -> bool {
        self.state.load(Ordering::Relaxed) == ST_OPEN
    }

    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    pub fn latency_budget_nanos(&self) -> u64 {
        self.latency_budget_nanos.load(Ordering::Relaxed)
    }

    /// Admission decision for one evaluation. `Closed` is the steady state:
    /// one relaxed load.
    pub fn gate(&self) -> BreakerGate {
        match self.state.load(Ordering::Relaxed) {
            ST_CLOSED => BreakerGate::Proceed,
            ST_HALF_OPEN
                if self
                    .trial_inflight
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok() =>
            {
                BreakerGate::Trial
            }
            _ => {
                self.skipped.fetch_add(1, Ordering::Relaxed);
                BreakerGate::Skip
            }
        }
    }

    /// Record one `Closed`-state outcome into the sliding window; returns
    /// `true` when this outcome tripped the breaker (the caller then
    /// quarantines the rule by rebuilding the plan). `tighten` halves the
    /// thresholds (ladder stage 3). `now` is only called on an actual trip.
    pub fn record_outcome(
        &self,
        error: bool,
        slow: bool,
        tighten: bool,
        now: impl FnOnce() -> u64,
    ) -> bool {
        let pos = self.seq.fetch_add(1, Ordering::Relaxed) & (BREAKER_WINDOW as u64 - 1);
        let bit = 1u64 << pos;
        if error {
            self.err_mask.fetch_or(bit, Ordering::Relaxed);
        } else {
            self.err_mask.fetch_and(!bit, Ordering::Relaxed);
        }
        if slow {
            self.slow_mask.fetch_or(bit, Ordering::Relaxed);
        } else {
            self.slow_mask.fetch_and(!bit, Ordering::Relaxed);
        }
        if !error && !slow {
            return false;
        }
        // Trip check only on a bad outcome — the healthy path never counts
        // bits or reads thresholds.
        let recorded = self.seq.load(Ordering::Relaxed);
        let mut min = self.min_outcomes.load(Ordering::Relaxed) as u64;
        let mut err_thresh = self.error_threshold.load(Ordering::Relaxed);
        let mut slow_thresh = self.slow_threshold.load(Ordering::Relaxed);
        if tighten {
            min = (min / 2).max(1);
            err_thresh = (err_thresh / 2).max(1);
            slow_thresh = (slow_thresh / 2).max(1);
        }
        if recorded < min {
            return false;
        }
        let errs = self.err_mask.load(Ordering::Relaxed).count_ones();
        let slows = self.slow_mask.load(Ordering::Relaxed).count_ones();
        if errs < err_thresh && slows < slow_thresh {
            return false;
        }
        self.trip(now())
    }

    /// `Closed/HalfOpen → Open` with a fresh cooldown. Returns whether this
    /// call performed the transition (concurrent trippers race; one wins).
    fn trip(&self, now_micros: u64) -> bool {
        let prev = self.state.swap(ST_OPEN, Ordering::AcqRel);
        if prev == ST_OPEN {
            return false;
        }
        self.reopen_at.store(
            now_micros.saturating_add(self.cooldown_micros.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
        self.trial_inflight.store(false, Ordering::Relaxed);
        self.trips.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// `Open → HalfOpen` once the cooldown expired. Returns whether this call
    /// performed the transition.
    pub fn maybe_half_open(&self, now_micros: u64) -> bool {
        if self.state.load(Ordering::Relaxed) != ST_OPEN
            || now_micros < self.reopen_at.load(Ordering::Relaxed)
        {
            return false;
        }
        if self
            .state
            .compare_exchange(ST_OPEN, ST_HALF_OPEN, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.trial_inflight.store(false, Ordering::Relaxed);
        true
    }

    /// Successful half-open trial: close the breaker and reset the window
    /// (the rule starts from a clean slate; `min_outcomes` applies afresh).
    pub fn trial_succeeded(&self) {
        self.seq.store(0, Ordering::Relaxed);
        self.err_mask.store(0, Ordering::Relaxed);
        self.slow_mask.store(0, Ordering::Relaxed);
        self.state.store(ST_CLOSED, Ordering::Release);
        self.trial_inflight.store(false, Ordering::Relaxed);
    }

    /// Failed half-open trial: back to `Open`, cooldown restarted from `now`.
    pub fn trial_failed(&self, now_micros: u64) -> bool {
        self.trip(now_micros)
    }

    /// Test/diagnostic reset to `Closed` with an empty window.
    pub fn force_close(&self) {
        self.trial_succeeded();
    }
}

// ------------------------------------------------------------ overload ladder

/// Degradation stages of the overload ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadStage {
    /// Everything on.
    Full,
    /// Causal-trace sampling suppressed.
    ShedTracing,
    /// Low-priority rules evaluated 1-in-2^k.
    SampleLowPriority,
    /// Breaker thresholds halved on top of stages 1–2.
    Tightened,
}

impl OverloadStage {
    pub fn from_u8(v: u8) -> OverloadStage {
        match v {
            1 => OverloadStage::ShedTracing,
            2 => OverloadStage::SampleLowPriority,
            3 => OverloadStage::Tightened,
            _ => OverloadStage::Full,
        }
    }

    pub fn as_u8(self) -> u8 {
        match self {
            OverloadStage::Full => 0,
            OverloadStage::ShedTracing => 1,
            OverloadStage::SampleLowPriority => 2,
            OverloadStage::Tightened => 3,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            OverloadStage::Full => "full",
            OverloadStage::ShedTracing => "shed-tracing",
            OverloadStage::SampleLowPriority => "sample-low-priority",
            OverloadStage::Tightened => "tightened",
        }
    }
}

/// Event-rate thresholds for the overload ladder. The ladder is opt-in
/// (`Sqlcm::set_overload_policy`); with no policy installed the per-event
/// cost is a masked counter test and nothing else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Events/second that *enter* stage 1 (shed tracing).
    pub stage1_events_per_sec: f64,
    /// Events/second that enter stage 2 (sample low-priority rules).
    pub stage2_events_per_sec: f64,
    /// Events/second that enter stage 3 (tighten breakers).
    pub stage3_events_per_sec: f64,
    /// Hysteresis: a stage is exited only when the rate drops below
    /// `enter × (1 − hysteresis)` — and stays there for `quiet_checkpoints`
    /// consecutive checkpoints. Both guards stop threshold flapping.
    pub hysteresis: f64,
    /// Consecutive below-exit-threshold checkpoints required to de-escalate
    /// one stage.
    pub quiet_checkpoints: u32,
    /// Stage ≥ 2 samples low-priority rules 1-in-2^`sample_shift`.
    pub sample_shift: u32,
}

impl Default for OverloadPolicy {
    fn default() -> OverloadPolicy {
        OverloadPolicy {
            stage1_events_per_sec: 50_000.0,
            stage2_events_per_sec: 100_000.0,
            stage3_events_per_sec: 200_000.0,
            hysteresis: 0.2,
            quiet_checkpoints: 2,
            sample_shift: 3,
        }
    }
}

impl OverloadPolicy {
    fn enter_threshold(&self, stage: u8) -> f64 {
        match stage {
            1 => self.stage1_events_per_sec,
            2 => self.stage2_events_per_sec,
            _ => self.stage3_events_per_sec,
        }
    }

    fn exit_threshold(&self, stage: u8) -> f64 {
        self.enter_threshold(stage) * (1.0 - self.hysteresis.clamp(0.0, 1.0))
    }
}

/// A ladder transition computed by [`Containment::ladder_step`], reported to
/// the monitor so it can flight-record it and raise the synthetic event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LadderTransition {
    pub from: OverloadStage,
    pub to: OverloadStage,
    pub rate_events_per_sec: f64,
}

/// Shared containment state owned by `SqlcmInner`: the global breaker switch,
/// ladder stage, and all containment counters.
pub(crate) struct Containment {
    breakers_enabled: AtomicBool,
    /// Default config applied to newly registered rules.
    default_breaker: RwLock<BreakerConfig>,
    stage: AtomicU8,
    policy_on: AtomicBool,
    policy: RwLock<OverloadPolicy>,
    /// `(1 << sample_shift) − 1`, cached for the dispatch path.
    sample_mask: AtomicU64,
    /// Low-priority sampling tick (advances only while stage ≥ 2).
    pub shed_seq: AtomicU64,
    last_check_micros: AtomicU64,
    last_check_events: AtomicU64,
    quiet_checkpoints: AtomicU32,
    pub transitions: ShardedCounter,
    pub shed_traces: ShardedCounter,
    pub shed_evaluations: ShardedCounter,
    pub breaker_trips: ShardedCounter,
    pub breaker_reopens: ShardedCounter,
    pub breaker_closes: ShardedCounter,
    pub breaker_skips: ShardedCounter,
}

impl Containment {
    pub fn new() -> Containment {
        let policy = OverloadPolicy::default();
        Containment {
            breakers_enabled: AtomicBool::new(true),
            default_breaker: RwLock::new(BreakerConfig::default()),
            stage: AtomicU8::new(0),
            policy_on: AtomicBool::new(false),
            sample_mask: AtomicU64::new((1u64 << policy.sample_shift) - 1),
            policy: RwLock::new(policy),
            shed_seq: AtomicU64::new(0),
            last_check_micros: AtomicU64::new(0),
            last_check_events: AtomicU64::new(0),
            quiet_checkpoints: AtomicU32::new(0),
            transitions: ShardedCounter::new(),
            shed_traces: ShardedCounter::new(),
            shed_evaluations: ShardedCounter::new(),
            breaker_trips: ShardedCounter::new(),
            breaker_reopens: ShardedCounter::new(),
            breaker_closes: ShardedCounter::new(),
            breaker_skips: ShardedCounter::new(),
        }
    }

    pub fn breakers_enabled(&self) -> bool {
        self.breakers_enabled.load(Ordering::Relaxed)
    }

    pub fn set_breakers_enabled(&self, on: bool) {
        self.breakers_enabled.store(on, Ordering::Relaxed);
    }

    pub fn default_breaker_config(&self) -> BreakerConfig {
        *self.default_breaker.read()
    }

    pub fn set_default_breaker_config(&self, cfg: BreakerConfig) {
        *self.default_breaker.write() = cfg;
    }

    pub fn stage(&self) -> u8 {
        self.stage.load(Ordering::Relaxed)
    }

    pub fn sample_mask(&self) -> u64 {
        self.sample_mask.load(Ordering::Relaxed)
    }

    pub fn policy_enabled(&self) -> bool {
        self.policy_on.load(Ordering::Relaxed)
    }

    pub fn policy(&self) -> OverloadPolicy {
        *self.policy.read()
    }

    /// Install (or update) the ladder policy; `now` anchors the first rate
    /// window.
    pub fn set_policy(&self, policy: OverloadPolicy, now_micros: u64, events_now: u64) {
        self.sample_mask
            .store((1u64 << policy.sample_shift.min(20)) - 1, Ordering::Relaxed);
        *self.policy.write() = policy;
        self.last_check_micros.store(now_micros, Ordering::Relaxed);
        self.last_check_events.store(events_now, Ordering::Relaxed);
        self.quiet_checkpoints.store(0, Ordering::Relaxed);
        self.policy_on.store(true, Ordering::Relaxed);
    }

    /// Disable the ladder and return to `Full`.
    pub fn clear_policy(&self) {
        self.policy_on.store(false, Ordering::Relaxed);
        self.stage.store(0, Ordering::Relaxed);
        self.quiet_checkpoints.store(0, Ordering::Relaxed);
    }

    /// One ladder checkpoint: estimate the event rate since the previous
    /// checkpoint and move at most one stage up or down. Cold path (runs
    /// every [`LADDER_CHECK_INTERVAL`] events, and only with a policy on).
    pub fn ladder_step(&self, now_micros: u64, events_now: u64) -> Option<LadderTransition> {
        if !self.policy_on.load(Ordering::Relaxed) {
            return None;
        }
        let prev_t = self.last_check_micros.swap(now_micros, Ordering::Relaxed);
        let prev_e = self.last_check_events.swap(events_now, Ordering::Relaxed);
        let dt = now_micros.saturating_sub(prev_t);
        if dt == 0 {
            return None;
        }
        let rate = events_now.saturating_sub(prev_e) as f64 / (dt as f64 / 1e6);
        let policy = *self.policy.read();
        let cur = self.stage.load(Ordering::Relaxed);
        // Escalate one stage per checkpoint while above the next threshold.
        if cur < 3 && rate >= policy.enter_threshold(cur + 1) {
            self.quiet_checkpoints.store(0, Ordering::Relaxed);
            self.stage.store(cur + 1, Ordering::Relaxed);
            return Some(LadderTransition {
                from: OverloadStage::from_u8(cur),
                to: OverloadStage::from_u8(cur + 1),
                rate_events_per_sec: rate,
            });
        }
        // De-escalate only after `quiet_checkpoints` consecutive windows
        // below the exit threshold of the current stage.
        if cur > 0 && rate < policy.exit_threshold(cur) {
            let quiet = self.quiet_checkpoints.fetch_add(1, Ordering::Relaxed) + 1;
            if quiet >= policy.quiet_checkpoints.max(1) {
                self.quiet_checkpoints.store(0, Ordering::Relaxed);
                self.stage.store(cur - 1, Ordering::Relaxed);
                return Some(LadderTransition {
                    from: OverloadStage::from_u8(cur),
                    to: OverloadStage::from_u8(cur - 1),
                    rate_events_per_sec: rate,
                });
            }
        } else {
            self.quiet_checkpoints.store(0, Ordering::Relaxed);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip_now(b: &RuleBreaker, n: u32) -> bool {
        let mut tripped = false;
        for _ in 0..n {
            tripped |= b.record_outcome(true, false, false, || 1_000);
        }
        tripped
    }

    #[test]
    fn breaker_trips_only_past_min_outcomes_and_threshold() {
        let b = RuleBreaker::new(BreakerConfig {
            error_threshold: 4,
            min_outcomes: 8,
            ..Default::default()
        });
        // 7 outcomes (4 errors) — under min_outcomes, no trip.
        for i in 0..7 {
            assert!(!b.record_outcome(i % 2 == 0, false, false, || 0));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // 8th outcome is the 4th error within the window and past min.
        assert!(b.record_outcome(true, false, false, || 123));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn window_slides_old_errors_out() {
        let b = RuleBreaker::new(BreakerConfig {
            error_threshold: 8,
            min_outcomes: 4,
            ..Default::default()
        });
        // 7 errors, then > 64 successes: the errors age out of the mask.
        assert!(!trip_now(&b, 7));
        for _ in 0..70 {
            assert!(!b.record_outcome(false, false, false, || 0));
        }
        // 7 fresh errors still under the threshold of 8.
        assert!(!trip_now(&b, 7));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_one_trial_and_outcome_decides() {
        let b = RuleBreaker::new(BreakerConfig {
            error_threshold: 2,
            min_outcomes: 2,
            cooldown_micros: 100,
            ..Default::default()
        });
        assert!(trip_now(&b, 2));
        assert!(!b.maybe_half_open(50), "cooldown not expired");
        assert!(b.maybe_half_open(1_100));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.gate(), BreakerGate::Trial);
        assert_eq!(b.gate(), BreakerGate::Skip, "second trial denied");
        // Failed trial: re-open, cooldown restarts.
        assert!(b.trial_failed(2_000));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.maybe_half_open(2_050));
        assert!(b.maybe_half_open(2_100));
        assert_eq!(b.gate(), BreakerGate::Trial);
        b.trial_succeeded();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(), BreakerGate::Proceed);
    }

    #[test]
    fn tighten_halves_thresholds() {
        let b = RuleBreaker::new(BreakerConfig {
            error_threshold: 8,
            min_outcomes: 8,
            ..Default::default()
        });
        // 4 errors in 8 outcomes: trips only when tightened (8/2 = 4).
        for _ in 0..4 {
            assert!(!b.record_outcome(false, false, true, || 0));
        }
        let mut tripped = false;
        for _ in 0..4 {
            tripped |= b.record_outcome(true, false, true, || 0);
        }
        assert!(tripped);
    }

    #[test]
    fn ladder_escalates_and_deescalates_with_hysteresis() {
        let c = Containment::new();
        let policy = OverloadPolicy {
            stage1_events_per_sec: 100.0,
            stage2_events_per_sec: 200.0,
            stage3_events_per_sec: 400.0,
            hysteresis: 0.5,
            quiet_checkpoints: 2,
            sample_shift: 2,
        };
        c.set_policy(policy, 0, 0);
        // 1s window with 150 events: 150 ev/s ≥ stage-1 enter.
        let t = c.ladder_step(1_000_000, 150).unwrap();
        assert_eq!(
            (t.from, t.to),
            (OverloadStage::Full, OverloadStage::ShedTracing)
        );
        assert_eq!(c.stage(), 1);
        // 250 ev/s: stage 2.
        assert!(c.ladder_step(2_000_000, 400).is_some());
        assert_eq!(c.stage(), 2);
        // 120 ev/s: above the stage-2 exit threshold (200 × 0.5 = 100) — hold.
        assert!(c.ladder_step(3_000_000, 520).is_none());
        assert_eq!(c.stage(), 2);
        // Two consecutive quiet windows (50 ev/s < 100) de-escalate one stage.
        assert!(c.ladder_step(4_000_000, 570).is_none());
        let t = c.ladder_step(5_000_000, 620).unwrap();
        assert_eq!(t.to, OverloadStage::ShedTracing);
        assert_eq!(c.stage(), 1);
    }

    #[test]
    fn clear_policy_returns_to_full() {
        let c = Containment::new();
        c.set_policy(OverloadPolicy::default(), 0, 0);
        c.stage.store(3, Ordering::Relaxed);
        c.clear_policy();
        assert_eq!(c.stage(), 0);
        assert!(c.ladder_step(1_000_000, 1_000_000).is_none());
    }
}
