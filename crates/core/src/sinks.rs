//! Pluggable sinks for the `SendMail` and `RunExternal` actions (§5.3).
//!
//! The paper's prototype sends real mail and launches real programs. In this
//! reproduction the default sinks *record* what would have been sent/run — the
//! experiments only need the action dispatched and its cost charged, and tests
//! need determinism. [`SpawningCommandSink`] optionally launches processes for
//! real.

use parking_lot::Mutex;

/// Receives `SendMail(Text, Address)` actions.
pub trait MailSink: Send + Sync {
    fn send(&self, to: &str, body: &str);
}

/// Receives `RunExternal(Command)` actions.
pub trait CommandSink: Send + Sync {
    fn run(&self, command: &str);
}

/// Default mail sink: an in-memory outbox.
#[derive(Default)]
pub struct RecordingMailSink {
    outbox: Mutex<Vec<(String, String)>>,
}

impl RecordingMailSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// All (address, body) pairs sent so far.
    pub fn messages(&self) -> Vec<(String, String)> {
        self.outbox.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.outbox.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MailSink for RecordingMailSink {
    fn send(&self, to: &str, body: &str) {
        self.outbox.lock().push((to.to_string(), body.to_string()));
    }
}

/// Default command sink: an in-memory command log.
#[derive(Default)]
pub struct RecordingCommandSink {
    log: Mutex<Vec<String>>,
}

impl RecordingCommandSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn commands(&self) -> Vec<String> {
        self.log.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.log.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl CommandSink for RecordingCommandSink {
    fn run(&self, command: &str) {
        self.log.lock().push(command.to_string());
    }
}

/// Command sink that actually spawns `sh -c <command>`, detached. Failures are
/// swallowed: a monitoring action must never take the server down.
pub struct SpawningCommandSink;

impl CommandSink for SpawningCommandSink {
    fn run(&self, command: &str) {
        let _ = std::process::Command::new("sh")
            .arg("-c")
            .arg(command)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_mail() {
        let m = RecordingMailSink::new();
        assert!(m.is_empty());
        m.send("dba@example.org", "slow query!");
        assert_eq!(m.len(), 1);
        assert_eq!(
            m.messages(),
            vec![("dba@example.org".to_string(), "slow query!".to_string())]
        );
    }

    #[test]
    fn recording_commands() {
        let c = RecordingCommandSink::new();
        c.run("analyze.sh outliers");
        assert_eq!(c.commands(), vec!["analyze.sh outliers"]);
    }
}
