//! **SQLCM** — the paper's contribution: a continuous-monitoring framework that
//! lives *inside* the database server.
//!
//! The two key components (paper Figure 1):
//!
//! * the **monitoring engine** ([`objects`], [`lat`]) — assembles probe values
//!   into monitored objects (`Query`, `Transaction`, `Blocker`, `Blocked`,
//!   `Timer`, plus `Session` as a schema extension) and maintains
//!   **light-weight aggregation tables** (LATs): in-memory group-by tables with
//!   COUNT/SUM/AVG/STDEV/MIN/MAX/FIRST/LAST aggregates, *aging* (moving-window)
//!   variants, an ordering-driven size bound with eviction, and persistence to
//!   ordinary tables;
//! * the **ECA rule engine** ([`rules`], [`monitor`], [`actions`]) — evaluates
//!   Event-Condition-Action rules synchronously in the thread that raised the
//!   event and dispatches actions (`Insert`, `Reset`, `Persist`, `SendMail`,
//!   `RunExternal`, `Cancel`, `Set`).
//!
//! Attach to a host engine and specify a task in a few lines:
//!
//! ```
//! use sqlcm_engine::Engine;
//! use sqlcm_core::{Sqlcm, LatSpec, LatAggFunc, Rule, RuleEvent, Action};
//!
//! let engine = Engine::in_memory();
//! engine.execute_batch("CREATE TABLE t (id INT PRIMARY KEY, v INT);").unwrap();
//! let sqlcm = Sqlcm::attach(&engine);
//!
//! // Example 1 of the paper: outlier invocations per query template.
//! sqlcm.define_lat(
//!     LatSpec::new("Duration_LAT")
//!         .group_by("Query.Logical_Signature", "Sig")
//!         .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration")
//!         .order_by("Avg_Duration", true)
//!         .max_rows(100),
//! ).unwrap();
//! sqlcm.add_rule(
//!     Rule::new("track")
//!         .on(RuleEvent::QueryCommit)
//!         .then(Action::insert("Duration_LAT")),
//! ).unwrap();
//!
//! let mut s = engine.connect("dba", "demo");
//! s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
//! s.execute("SELECT v FROM t WHERE id = 1").unwrap();
//! assert!(sqlcm.lat("Duration_LAT").unwrap().row_count() >= 1);
//! ```

pub mod actions;
pub mod analysis;
pub mod containment;
pub mod deferred;
pub mod fault;
mod guard;
#[doc(hidden)]
pub mod ir;
pub mod lat;
pub mod lat_ref;
pub mod monitor;
pub mod objects;
pub mod plan;
pub mod rules;
pub mod sinks;
pub mod telemetry;
pub mod timer;
pub mod trace;
#[doc(hidden)]
pub mod vm;

pub use actions::Action;
pub use analysis::{Analyzer, Code, Diagnostic, Severity};
pub use containment::{BreakerConfig, BreakerState, OverloadPolicy, OverloadStage};
pub use deferred::{LossEntry, RetryPolicy, DEFAULT_QUEUE_CAPACITY};
pub use fault::{FaultKind, FaultPlan, FaultRate};
pub use lat::{Lat, LatAggFunc, LatShardStats, LatSpec, DEFAULT_LAT_SHARDS, MAX_LAT_SHARDS};
pub use lat_ref::ReferenceLat;
pub use monitor::{Sqlcm, SqlcmStats};
pub use objects::{ClassName, Object};
pub use plan::{HoistGroup, PlanSummary};
pub use rules::{Rule, RuleEvent, RulePriority};
pub use sinks::{CommandSink, MailSink, RecordingCommandSink, RecordingMailSink};
pub use telemetry::{
    DispatchTelemetry, LatTelemetry, MatchingTelemetry, ProbeTelemetry, RuleError, RuleTelemetry,
    TelemetrySnapshot,
};
pub use timer::TimerRegistry;
pub use trace::{
    chrome_trace_json, SpanKind, TraceSampling, TraceSnapshot, TraceSpan, TracingTelemetry,
};
