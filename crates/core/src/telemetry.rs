//! Self-telemetry for the monitor: per-probe / per-rule / per-LAT metrics,
//! a bounded flight recorder of recent rule firings, and the snapshot types
//! exposed through [`crate::Sqlcm::telemetry`].
//!
//! The paper argues monitoring must be cheap enough to leave on (§2.1, §7);
//! the same discipline applies to the monitor watching itself. All hot-path
//! state lives in lock-free primitives from `sqlcm-telemetry`:
//!
//! * per-probe event counts are **always on** — one sharded-counter increment
//!   per event, so `sum(probe events) == SqlcmStats::events` at any quiescent
//!   point;
//! * latency histograms and the flight recorder read the clock and therefore
//!   honour the [`Telem::enabled`] switch (`Sqlcm::set_telemetry_enabled`);
//! * the per-rule last-error map is bounded (`RULE_ERRORS_CAPACITY`) and
//!   evicts the entry with the fewest occurrences when full.
//!
//! Snapshots are plain owned data: safe to hold, print ([`TelemetrySnapshot::to_text`]),
//! serialize ([`TelemetrySnapshot::to_json`]), or feed back into the rule
//! engine as a synthetic `Monitor` object ([`TelemetrySnapshot::health`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use sqlcm_common::ProbeKind;
use sqlcm_telemetry::{
    FlightRecord, FlightRecorder, HistogramSnapshot, LatencyHistogram, ShardedCounter,
};

use crate::monitor::SqlcmStats;
use crate::objects::MonitorHealth;
use crate::trace::TracingTelemetry;

/// Default flight-recorder depth: last N rule firings (and errored
/// evaluations). Adjustable at runtime via
/// [`crate::Sqlcm::set_flight_recorder_capacity`].
pub const FLIGHT_RECORDER_CAPACITY: usize = 256;

/// Bound on the per-rule last-error map.
pub const RULE_ERRORS_CAPACITY: usize = 64;

/// Reserved timer name used by `Sqlcm::enable_self_monitoring`; alarms on it
/// raise `RuleEvent::MonitorTick` instead of `Timer.Alarm`.
pub const SELF_MONITOR_TIMER: &str = "__sqlcm_self_monitor";

/// Last error recorded for a rule, with how many errors that rule produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleError {
    pub rule: String,
    /// Errors attributed to this rule since attach (not just the last one).
    pub count: u64,
    pub message: String,
}

pub(crate) struct RuleErrorEntry {
    pub count: u64,
    pub message: String,
}

/// Internal telemetry state owned by `SqlcmInner`.
pub(crate) struct Telem {
    enabled: AtomicBool,
    /// Per-probe-kind event counts (always on; indexed by `ProbeKind::index`).
    pub probe_events: [ShardedCounter; ProbeKind::COUNT],
    /// Per-probe-kind `on_event` wall time in nanoseconds (gated by `enabled`).
    pub probe_latency: [LatencyHistogram; ProbeKind::COUNT],
    /// Ring of recent rule firings (gated by `enabled`).
    pub recorder: FlightRecorder,
    /// rule name → last error + count, bounded by `RULE_ERRORS_CAPACITY`.
    pub rule_errors: Mutex<HashMap<String, RuleErrorEntry>>,
    /// Dispatch plans built since attach (registration-rate, not event-rate).
    pub plan_rebuilds: ShardedCounter,
    /// LAT row lookups served from a shared per-event hoist slot instead of
    /// re-fetching (the shared-lookup hoisting win; see `plan::HoistSlot`).
    pub hoisted_lookup_hits: ShardedCounter,
    /// LAT rows actually fetched by condition evaluation.
    pub lat_row_fetches: ShardedCounter,
    /// Hoist-slot clears skipped because the analyzer proved the fired
    /// rule's writes disjoint from every reader of the slot (each one is a
    /// re-fetch the next reader did not pay).
    pub hoist_invalidations_avoided: ShardedCounter,
    /// Rule/LAT registry lock acquisitions. Cold paths only: the dispatch hot
    /// path works off the immutable plan and must never move this counter —
    /// the no-subscriber regression test pins that.
    pub reg_lock_acquisitions: ShardedCounter,
    /// Bytecode instructions retired by the condition VM (`crate::vm`).
    pub vm_instructions: ShardedCounter,
    /// Condition subexpressions served from a shared per-event CSE slot
    /// instead of re-evaluating (see `plan::CseSlot`).
    pub cse_hits: ShardedCounter,
    /// Condition-IR ops eliminated by registration-time constant folding,
    /// summed over all registered rules.
    pub folded_ops: ShardedCounter,
    /// Guard-index probes performed (one per event whose plan has a usable
    /// index; see `crate::guard`).
    pub guard_probes: ShardedCounter,
    /// Rules skipped without running the condition VM because a violated
    /// guard proved the condition cannot hold.
    pub rules_pruned: ShardedCounter,
    /// Rules that survived a guard-index probe and ran the VM (candidates).
    /// Only moves on probed events, so `candidate_rules / guard_probes` is
    /// the mean candidate set size.
    pub candidate_rules: ShardedCounter,
}

impl Telem {
    pub fn new() -> Telem {
        Telem {
            enabled: AtomicBool::new(true),
            probe_events: std::array::from_fn(|_| ShardedCounter::new()),
            probe_latency: std::array::from_fn(|_| LatencyHistogram::new()),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            rule_errors: Mutex::new(HashMap::new()),
            plan_rebuilds: ShardedCounter::new(),
            hoisted_lookup_hits: ShardedCounter::new(),
            lat_row_fetches: ShardedCounter::new(),
            hoist_invalidations_avoided: ShardedCounter::new(),
            reg_lock_acquisitions: ShardedCounter::new(),
            vm_instructions: ShardedCounter::new(),
            cse_hits: ShardedCounter::new(),
            folded_ops: ShardedCounter::new(),
            guard_probes: ShardedCounter::new(),
            rules_pruned: ShardedCounter::new(),
            candidate_rules: ShardedCounter::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record `message` as `rule`'s latest error. When the map is full and the
    /// rule is new, the entry with the fewest occurrences is evicted — a rule
    /// failing repeatedly is more interesting than one that failed once.
    pub fn record_rule_error(&self, rule: &str, message: String) {
        let mut map = self.rule_errors.lock();
        if let Some(entry) = map.get_mut(rule) {
            entry.count += 1;
            entry.message = message;
            return;
        }
        if map.len() >= RULE_ERRORS_CAPACITY {
            if let Some(least) = map
                .iter()
                .min_by_key(|(_, e)| e.count)
                .map(|(k, _)| k.clone())
            {
                map.remove(&least);
            }
        }
        map.insert(rule.to_string(), RuleErrorEntry { count: 1, message });
    }

    /// All per-rule errors, sorted by rule name for determinism.
    pub fn rule_errors_snapshot(&self) -> Vec<RuleError> {
        let map = self.rule_errors.lock();
        let mut out: Vec<RuleError> = map
            .iter()
            .map(|(rule, e)| RuleError {
                rule: rule.clone(),
                count: e.count,
                message: e.message.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.rule.cmp(&b.rule));
        out
    }
}

/// Dispatch-plan slice of a telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DispatchTelemetry {
    /// Epoch of the currently published plan; bumps on every rebuild
    /// (`add_rule`/`remove_rule`/`define_lat`/`drop_lat`/`set_rule_enabled`).
    pub plan_epoch: u64,
    /// Plans built since attach.
    pub plan_rebuilds: u64,
    /// LAT lookups served from a shared per-event hoist slot.
    pub hoisted_lookup_hits: u64,
    /// LAT rows actually fetched by condition evaluation.
    pub lat_row_fetches: u64,
    /// Rule/LAT registry lock acquisitions (cold paths only; steady-state
    /// dispatch must not move this).
    pub reg_lock_acquisitions: u64,
    /// Hoist-slot clears skipped because the fired rule's writes were
    /// provably disjoint from the slot's readers.
    pub hoist_invalidations_avoided: u64,
    /// Bytecode instructions retired by the condition VM.
    pub vm_instructions: u64,
    /// Condition subexpressions served from a shared per-event CSE slot
    /// instead of re-evaluating.
    pub cse_hits: u64,
    /// Condition-IR ops eliminated by registration-time constant folding.
    pub folded_ops: u64,
}

/// Guard-index (rule-matching) slice of a telemetry snapshot.
///
/// Populated by the guard index (`crate::guard`): per-event-class
/// discrimination structures that prune rules whose conditions provably
/// cannot hold, so only *candidate* rules run the condition VM. All
/// counters are zero when the index is disabled
/// ([`crate::Sqlcm::set_guard_index_enabled`]) or no rule is indexable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MatchingTelemetry {
    /// Index probes performed — one per event whose plan has a usable index.
    pub guard_probes: u64,
    /// Rules skipped without running the VM (violated guard proved the
    /// condition false under the error/∃ contract).
    pub rules_pruned: u64,
    /// Rules that survived a probe and ran the VM, summed over probed
    /// events.
    pub candidate_rules: u64,
    /// Rules in the current plan with no extractable guard (always
    /// evaluated). Reflects the published plan, not a running count.
    pub residual_rules: u64,
}

impl MatchingTelemetry {
    /// Mean candidate-set size per probed event (0.0 before any probe).
    pub fn candidate_rules_per_event(&self) -> f64 {
        if self.guard_probes == 0 {
            0.0
        } else {
            self.candidate_rules as f64 / self.guard_probes as f64
        }
    }
}

/// Per-probe-kind slice of a telemetry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeTelemetry {
    /// Probe name in `Class.Event` convention (e.g. `"Query.Commit"`).
    pub kind: &'static str,
    /// Events of this kind delivered to the monitor.
    pub events: u64,
    /// Wall time spent in `on_event` for this kind, nanoseconds.
    pub on_event: HistogramSnapshot,
}

/// Per-rule slice of a telemetry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleTelemetry {
    pub name: String,
    /// Triggering event, in probe naming convention (`"Query.Commit"`).
    pub event: String,
    pub evaluations: u64,
    pub fires: u64,
    pub actions: u64,
    pub action_errors: u64,
    /// Condition-evaluation wall time, nanoseconds.
    pub condition: HistogramSnapshot,
    /// Action-execution wall time (all actions of one firing), nanoseconds.
    pub action: HistogramSnapshot,
    /// Last error attributed to this rule, if any.
    pub last_error: Option<RuleError>,
}

/// Per-LAT slice of a telemetry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatTelemetry {
    pub name: String,
    pub inserts: u64,
    pub evictions: u64,
    pub resets: u64,
    /// Aging-window block rolls (§4.3).
    pub aging_rolls: u64,
    /// Current row count.
    pub rows: u64,
    /// High-water mark of row occupancy after size enforcement (never above
    /// `max_rows` on a bounded LAT).
    pub row_high_water: u64,
    /// Approximate bytes held right now.
    pub memory_bytes: u64,
    /// Number of row-map shards.
    pub shards: u64,
    /// Shard-lock acquisitions that found the lock held (contention events
    /// summed over all shards).
    pub lock_contentions: u64,
}

/// Per-rule breaker state in a [`ContainmentTelemetry`]. Only rules whose
/// breaker is not `Closed`, or that have tripped at least once, are listed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTelemetry {
    pub rule: String,
    /// `"closed"`, `"open"`, or `"half-open"`.
    pub state: &'static str,
    /// Times this rule's breaker tripped (including failed half-open trials).
    pub trips: u64,
    /// Evaluations skipped while the breaker was not closed.
    pub skipped: u64,
}

/// Deferred-action-queue slice of a telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeferredTelemetry {
    /// Whether async external actions are on (`Sqlcm::set_async_actions`).
    pub enabled: bool,
    pub queue_depth: u64,
    pub capacity: u64,
    /// Deepest the queue has ever been.
    pub high_water: u64,
    pub enqueued: u64,
    /// Actions executed successfully (each counted once, however many
    /// attempts it took).
    pub executed: u64,
    /// Failed execution attempts (a single action can contribute several).
    pub failed_attempts: u64,
    /// Attempts rescheduled with backoff.
    pub retries: u64,
    /// Actions dropped oldest-first on queue overflow.
    pub dropped_overflow: u64,
    /// Actions dropped after exhausting the retry policy.
    pub dropped_exhausted: u64,
    /// Executions suppressed by the idempotency-key ring.
    pub deduped: u64,
}

/// Fault-containment slice of a telemetry snapshot: circuit breakers, the
/// overload ladder, and the deferred-action queue with its loss ledger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContainmentTelemetry {
    pub breakers_enabled: bool,
    /// Current overload-ladder stage (0 = full, 3 = tightened).
    pub overload_stage: u64,
    /// Ladder stage transitions since attach.
    pub overload_transitions: u64,
    /// Trace-sampling decisions suppressed at stage ≥ 1.
    pub shed_traces: u64,
    /// Low-priority evaluations skipped by sampling at stage ≥ 2.
    pub shed_evaluations: u64,
    pub breaker_trips: u64,
    /// `Open → HalfOpen` probation re-admissions.
    pub breaker_reopens: u64,
    /// Successful half-open trials (breaker closed again).
    pub breaker_closes: u64,
    /// Evaluations skipped across all non-closed breakers.
    pub breaker_skipped: u64,
    /// Rules quarantined out of the current dispatch plan.
    pub quarantined: Vec<String>,
    /// Per-rule breaker detail (non-closed or previously tripped only).
    pub breakers: Vec<BreakerTelemetry>,
    pub deferred: DeferredTelemetry,
    /// Loss ledger: every shed or dropped deferred action, by (rule, reason).
    pub losses: Vec<crate::deferred::LossEntry>,
}

/// A point-in-time, owned view of everything the monitor knows about itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The global counters (same numbers as [`crate::Sqlcm::stats`]).
    pub stats: SqlcmStats,
    /// Dispatch-plan state: epoch, rebuilds, hoisting effectiveness.
    pub dispatch: DispatchTelemetry,
    /// Guard-index rule matching: probes, pruned/candidate/residual rules.
    pub matching: MatchingTelemetry,
    /// One entry per [`ProbeKind`], in `ProbeKind::ALL` order.
    pub probes: Vec<ProbeTelemetry>,
    /// One entry per registered rule, in registration order.
    pub rules: Vec<RuleTelemetry>,
    /// One entry per defined LAT, sorted by name.
    pub lats: Vec<LatTelemetry>,
    /// Recent rule firings, oldest first (bounded by the flight recorder's
    /// current capacity, `FLIGHT_RECORDER_CAPACITY` by default).
    pub flight_records: Vec<FlightRecord>,
    /// Total records ever written to the flight recorder (including evicted).
    pub flight_total: u64,
    /// Causal-tracing state: sampling policy, traces completed/dropped,
    /// deepest cascade observed (see `crate::trace`).
    pub tracing: TracingTelemetry,
    /// Fault-containment state: breakers, overload ladder, deferred queue.
    pub containment: ContainmentTelemetry,
}

impl TelemetrySnapshot {
    /// Condition-evaluation latency merged across all rules.
    pub fn merged_condition_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for rule in &self.rules {
            merged.merge(&rule.condition);
        }
        merged
    }

    /// `on_event` latency merged across all probe kinds.
    pub fn merged_probe_latency(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for probe in &self.probes {
            merged.merge(&probe.on_event);
        }
        merged
    }

    /// Condense the snapshot into the health summary that becomes the
    /// synthetic `Monitor` object (self-monitoring bridge).
    pub fn health(&self) -> MonitorHealth {
        const NANO: f64 = 1e-9;
        let eval = self.merged_condition_latency();
        let probe = self.merged_probe_latency();
        MonitorHealth {
            events: self.stats.events,
            evaluations: self.stats.evaluations,
            fires: self.stats.fires,
            actions: self.stats.actions,
            action_errors: self.stats.action_errors,
            eval_p50_secs: eval.p50() as f64 * NANO,
            eval_p95_secs: eval.p95() as f64 * NANO,
            eval_p99_secs: eval.p99() as f64 * NANO,
            eval_max_secs: eval.max as f64 * NANO,
            probe_p99_secs: probe.p99() as f64 * NANO,
            lat_memory_bytes: self.lats.iter().map(|l| l.memory_bytes).sum(),
            rule_count: self.rules.len() as u64,
            lat_count: self.lats.len() as u64,
            overload_stage: self.containment.overload_stage,
            quarantined_rules: self.containment.quarantined.len() as u64,
            deferred_depth: self.containment.deferred.queue_depth,
        }
    }

    /// Human-readable multi-line report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sqlcm telemetry: events={} evaluations={} fires={} actions={} action_errors={}",
            self.stats.events,
            self.stats.evaluations,
            self.stats.fires,
            self.stats.actions,
            self.stats.action_errors
        );
        let _ = writeln!(
            out,
            "dispatch plan: epoch={} rebuilds={} lat_row_fetches={} hoisted_hits={} \
             invalidations_avoided={} reg_locks={} vm_instructions={} cse_hits={} folded_ops={}",
            self.dispatch.plan_epoch,
            self.dispatch.plan_rebuilds,
            self.dispatch.lat_row_fetches,
            self.dispatch.hoisted_lookup_hits,
            self.dispatch.hoist_invalidations_avoided,
            self.dispatch.reg_lock_acquisitions,
            self.dispatch.vm_instructions,
            self.dispatch.cse_hits,
            self.dispatch.folded_ops,
        );
        let _ = writeln!(
            out,
            "matching: guard_probes={} rules_pruned={} candidate_rules_per_event={:.2} \
             residual_rules={}",
            self.matching.guard_probes,
            self.matching.rules_pruned,
            self.matching.candidate_rules_per_event(),
            self.matching.residual_rules,
        );
        let _ = writeln!(out, "probes:");
        for p in &self.probes {
            if p.events == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<22} events={:<8} on_event p50={} p95={} p99={} max={}",
                p.kind,
                p.events,
                fmt_nanos(p.on_event.p50()),
                fmt_nanos(p.on_event.p95()),
                fmt_nanos(p.on_event.p99()),
                fmt_nanos(p.on_event.max),
            );
        }
        let _ = writeln!(out, "rules:");
        for r in &self.rules {
            let _ = writeln!(
                out,
                "  {:<22} on={:<18} evals={:<8} fires={:<8} actions={:<8} errors={:<4} cond p99={} action p99={}",
                r.name,
                r.event,
                r.evaluations,
                r.fires,
                r.actions,
                r.action_errors,
                fmt_nanos(r.condition.p99()),
                fmt_nanos(r.action.p99()),
            );
            if let Some(e) = &r.last_error {
                let _ = writeln!(out, "    last error (x{}): {}", e.count, e.message);
            }
        }
        let _ = writeln!(out, "lats:");
        for l in &self.lats {
            let _ = writeln!(
                out,
                "  {:<22} inserts={:<8} evictions={:<6} resets={:<4} aging_rolls={:<6} rows={}/{} bytes={} shards={} contentions={}",
                l.name,
                l.inserts,
                l.evictions,
                l.resets,
                l.aging_rolls,
                l.rows,
                l.row_high_water,
                l.memory_bytes,
                l.shards,
                l.lock_contentions,
            );
        }
        let _ = writeln!(
            out,
            "tracing: sampling={} sampled={} completed={} dropped={} spans={} max_cascade_depth={} ring={}/{}",
            self.tracing.sampling,
            self.tracing.sampled,
            self.tracing.completed,
            self.tracing.dropped,
            self.tracing.spans,
            self.tracing.max_cascade_depth,
            self.tracing.ring_len,
            self.tracing.ring_capacity,
        );
        let c = &self.containment;
        let _ = writeln!(
            out,
            "containment: breakers={} stage={} transitions={} trips={} reopens={} closes={} skipped={} shed_traces={} shed_evals={}",
            if c.breakers_enabled { "on" } else { "off" },
            c.overload_stage,
            c.overload_transitions,
            c.breaker_trips,
            c.breaker_reopens,
            c.breaker_closes,
            c.breaker_skipped,
            c.shed_traces,
            c.shed_evaluations,
        );
        if !c.quarantined.is_empty() {
            let _ = writeln!(out, "  quarantined: {}", c.quarantined.join(", "));
        }
        for b in &c.breakers {
            let _ = writeln!(
                out,
                "  breaker {:<22} state={:<9} trips={} skipped={}",
                b.rule, b.state, b.trips, b.skipped
            );
        }
        let d = &c.deferred;
        let _ = writeln!(
            out,
            "deferred actions: {} depth={}/{} high_water={} enqueued={} executed={} failed_attempts={} retries={} dropped_overflow={} dropped_exhausted={} deduped={}",
            if d.enabled { "async" } else { "sync" },
            d.queue_depth,
            d.capacity,
            d.high_water,
            d.enqueued,
            d.executed,
            d.failed_attempts,
            d.retries,
            d.dropped_overflow,
            d.dropped_exhausted,
            d.deduped,
        );
        for l in &c.losses {
            let _ = writeln!(out, "  lost {:<22} {:<18} x{}", l.rule, l.reason, l.count);
        }
        let _ = writeln!(
            out,
            "flight recorder ({} shown, {} total):",
            self.flight_records.len(),
            self.flight_total
        );
        for rec in &self.flight_records {
            let _ = writeln!(
                out,
                "  #{:<6} {:<18} {:<22} fired={:<5} actions={} errors={} took={}{}",
                rec.seq,
                rec.event,
                rec.rule,
                rec.fired,
                rec.actions,
                rec.errors,
                fmt_nanos(rec.duration_nanos),
                if rec.trace_id != 0 {
                    format!(" trace=#{}", rec.trace_id)
                } else {
                    String::new()
                },
            );
        }
        out
    }

    /// JSON rendering (hand-rolled; the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!(
            "\"stats\":{{\"events\":{},\"evaluations\":{},\"fires\":{},\"actions\":{},\"action_errors\":{}}}",
            self.stats.events,
            self.stats.evaluations,
            self.stats.fires,
            self.stats.actions,
            self.stats.action_errors
        ));
        out.push_str(&format!(
            ",\"dispatch\":{{\"plan_epoch\":{},\"plan_rebuilds\":{},\"hoisted_lookup_hits\":{},\"lat_row_fetches\":{},\"reg_lock_acquisitions\":{},\"hoist_invalidations_avoided\":{},\"vm_instructions\":{},\"cse_hits\":{},\"folded_ops\":{}}}",
            self.dispatch.plan_epoch,
            self.dispatch.plan_rebuilds,
            self.dispatch.hoisted_lookup_hits,
            self.dispatch.lat_row_fetches,
            self.dispatch.reg_lock_acquisitions,
            self.dispatch.hoist_invalidations_avoided,
            self.dispatch.vm_instructions,
            self.dispatch.cse_hits,
            self.dispatch.folded_ops
        ));
        out.push_str(&format!(
            ",\"matching\":{{\"guard_probes\":{},\"rules_pruned\":{},\"candidate_rules\":{},\"candidate_rules_per_event\":{:.4},\"residual_rules\":{}}}",
            self.matching.guard_probes,
            self.matching.rules_pruned,
            self.matching.candidate_rules,
            self.matching.candidate_rules_per_event(),
            self.matching.residual_rules
        ));
        out.push_str(",\"probes\":[");
        for (i, p) in self.probes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":{},\"events\":{},\"on_event\":{}}}",
                json_str(p.kind),
                p.events,
                json_hist(&p.on_event)
            ));
        }
        out.push_str("],\"rules\":[");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"event\":{},\"evaluations\":{},\"fires\":{},\"actions\":{},\"action_errors\":{},\"condition\":{},\"action\":{},\"last_error\":{}}}",
                json_str(&r.name),
                json_str(&r.event),
                r.evaluations,
                r.fires,
                r.actions,
                r.action_errors,
                json_hist(&r.condition),
                json_hist(&r.action),
                match &r.last_error {
                    None => "null".to_string(),
                    Some(e) => format!(
                        "{{\"count\":{},\"message\":{}}}",
                        e.count,
                        json_str(&e.message)
                    ),
                }
            ));
        }
        out.push_str("],\"lats\":[");
        for (i, l) in self.lats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"inserts\":{},\"evictions\":{},\"resets\":{},\"aging_rolls\":{},\"rows\":{},\"row_high_water\":{},\"memory_bytes\":{},\"shards\":{},\"lock_contentions\":{}}}",
                json_str(&l.name),
                l.inserts,
                l.evictions,
                l.resets,
                l.aging_rolls,
                l.rows,
                l.row_high_water,
                l.memory_bytes,
                l.shards,
                l.lock_contentions
            ));
        }
        out.push_str("],\"tracing\":");
        out.push_str(&format!(
            "{{\"sampling\":{},\"sampled\":{},\"completed\":{},\"dropped\":{},\"spans\":{},\"max_cascade_depth\":{},\"ring_len\":{},\"ring_capacity\":{}}}",
            json_str(&self.tracing.sampling),
            self.tracing.sampled,
            self.tracing.completed,
            self.tracing.dropped,
            self.tracing.spans,
            self.tracing.max_cascade_depth,
            self.tracing.ring_len,
            self.tracing.ring_capacity
        ));
        let c = &self.containment;
        out.push_str(",\"containment\":{");
        out.push_str(&format!(
            "\"breakers_enabled\":{},\"overload_stage\":{},\"overload_transitions\":{},\"shed_traces\":{},\"shed_evaluations\":{},\"breaker_trips\":{},\"breaker_reopens\":{},\"breaker_closes\":{},\"breaker_skipped\":{}",
            c.breakers_enabled,
            c.overload_stage,
            c.overload_transitions,
            c.shed_traces,
            c.shed_evaluations,
            c.breaker_trips,
            c.breaker_reopens,
            c.breaker_closes,
            c.breaker_skipped
        ));
        out.push_str(",\"quarantined\":[");
        for (i, q) in c.quarantined.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(q));
        }
        out.push_str("],\"breakers\":[");
        for (i, b) in c.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"state\":{},\"trips\":{},\"skipped\":{}}}",
                json_str(&b.rule),
                json_str(b.state),
                b.trips,
                b.skipped
            ));
        }
        let d = &c.deferred;
        out.push_str(&format!(
            "],\"deferred\":{{\"enabled\":{},\"queue_depth\":{},\"capacity\":{},\"high_water\":{},\"enqueued\":{},\"executed\":{},\"failed_attempts\":{},\"retries\":{},\"dropped_overflow\":{},\"dropped_exhausted\":{},\"deduped\":{}}}",
            d.enabled,
            d.queue_depth,
            d.capacity,
            d.high_water,
            d.enqueued,
            d.executed,
            d.failed_attempts,
            d.retries,
            d.dropped_overflow,
            d.dropped_exhausted,
            d.deduped
        ));
        out.push_str(",\"losses\":[");
        for (i, l) in c.losses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"reason\":{},\"count\":{}}}",
                json_str(&l.rule),
                json_str(l.reason),
                l.count
            ));
        }
        out.push_str("]}");
        out.push_str(",\"flight_recorder\":{\"total\":");
        out.push_str(&self.flight_total.to_string());
        out.push_str(",\"records\":[");
        for (i, rec) in self.flight_records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"event\":{},\"rule\":{},\"fired\":{},\"actions\":{},\"errors\":{},\"duration_nanos\":{},\"trace_id\":{}}}",
                rec.seq,
                json_str(&rec.event),
                json_str(&rec.rule),
                rec.fired,
                rec.actions,
                rec.errors,
                rec.duration_nanos,
                rec.trace_id
            ));
        }
        out.push_str("]}}");
        out
    }
}

/// Compact nanosecond formatting for the text report.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Histogram as JSON: summary stats only (the 64 raw buckets stay internal).
fn json_hist(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
        h.count,
        h.sum,
        h.max,
        h.p50(),
        h.p95(),
        h.p99()
    )
}

/// Minimal JSON string escape (quote, backslash, control chars). Shared with
/// the Chrome trace exporter in `crate::trace`.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_error_map_updates_and_evicts_least_frequent() {
        let telem = Telem::new();
        // "hot" fails often; it must survive eviction pressure.
        for _ in 0..5 {
            telem.record_rule_error("hot", "boom".into());
        }
        for i in 0..RULE_ERRORS_CAPACITY {
            telem.record_rule_error(&format!("cold_{i}"), "meh".into());
        }
        let errors = telem.rule_errors_snapshot();
        assert_eq!(errors.len(), RULE_ERRORS_CAPACITY);
        let hot = errors.iter().find(|e| e.rule == "hot").expect("hot kept");
        assert_eq!(hot.count, 5);
        assert_eq!(hot.message, "boom");
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_snapshot_renders_valid_shapes() {
        let snap = TelemetrySnapshot {
            stats: SqlcmStats::default(),
            dispatch: DispatchTelemetry::default(),
            matching: MatchingTelemetry::default(),
            probes: Vec::new(),
            rules: Vec::new(),
            lats: Vec::new(),
            flight_records: Vec::new(),
            flight_total: 0,
            tracing: TracingTelemetry::default(),
            containment: ContainmentTelemetry::default(),
        };
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"probes\":[]"));
        assert!(json.contains("\"dispatch\":{\"plan_epoch\":0"));
        assert!(json.contains("\"matching\":{\"guard_probes\":0"));
        assert!(snap.to_text().contains("matching: guard_probes=0"));
        assert!(json.contains("\"tracing\":{\"sampling\":\"off\""));
        assert!(json.contains("\"containment\":{\"breakers_enabled\":false"));
        assert!(json.contains("\"losses\":[]"));
        assert!(snap.to_text().contains("tracing: sampling=off"));
        assert!(snap.to_text().contains("containment: breakers=off stage=0"));
        assert!(snap
            .to_text()
            .contains("flight recorder (0 shown, 0 total)"));
        assert_eq!(snap.health(), MonitorHealth::default());
    }
}
