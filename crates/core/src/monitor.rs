//! The SQLCM facade: LAT registry, rule registry, event dispatch.
//!
//! [`Sqlcm::attach`] hooks an instance into a host engine as an
//! [`Instrumentation`] sink. Events are processed *synchronously on the thread
//! that raised them* (paper §6.1); actions whose side effects raise further
//! events (LAT evictions) are queued thread-locally and drained after all rules
//! for the current event ran — the deferred-side-effect semantics of §5 ("any
//! action, that as a side-effect may trigger further events, is not executed
//! synchronously").
//!
//! Rule-evaluation order is fixed: registration order, and "for any given
//! event, all applicable rules are triggered before any later event is
//! processed".
//!
//! The hot path runs on an immutable, atomically-published [`DispatchPlan`]
//! (see [`crate::plan`]): one atomic load per event, no registry locks, and
//! payload objects assembled from pooled thread-local buffers — steady-state
//! dispatch performs zero heap allocations for payload assembly. Plans are
//! rebuilt (and the epoch bumped) on every registry mutation:
//! `add_rule`, `remove_rule`, `define_lat`, `drop_lat`, `set_rule_enabled`.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};
use sqlcm_common::{EngineEvent, Error, Result, SharedClock, Value};
use sqlcm_engine::engine::EngineInner;
use sqlcm_engine::instrument::Instrumentation;
use sqlcm_engine::Engine;

use sqlcm_analyze::{Analyzer, Diagnostic};
use sqlcm_telemetry::{FlightRecord, LatencyHistogram, Stopwatch};

use crate::actions::{persist_rows, read_table, substitute, Action};
use crate::analysis;
use crate::containment::{
    BreakerConfig, BreakerGate, BreakerState, Containment, LadderTransition, OverloadPolicy,
    OverloadStage, RuleBreaker, LADDER_CHECK_INTERVAL,
};
use crate::deferred::{
    AttemptOutcome, DeferredAction, DeferredKind, DeferredQueue, LossEntry, RetryPolicy,
};
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::lat::{Lat, LatAggFunc, LatSpec};
use crate::objects::{self, evicted_object, ClassName, Object};
use crate::plan::{
    CompiledAction, DispatchPlan, EventPlan, HoistState, PlanCell, PlanRule, PlanSummary,
    Registered, NO_HOIST,
};
use crate::rules::{EvalContext, LatBinding, Rule, RuleEvent};
use crate::sinks::{CommandSink, MailSink, RecordingCommandSink, RecordingMailSink};
use crate::telemetry::{
    BreakerTelemetry, ContainmentTelemetry, DeferredTelemetry, DispatchTelemetry, LatTelemetry,
    MatchingTelemetry, ProbeTelemetry, RuleError, RuleTelemetry, Telem, TelemetrySnapshot,
    SELF_MONITOR_TIMER,
};
use crate::timer::TimerRegistry;
use crate::trace::{explain_condition, TraceCtx, TraceSampling, TraceSnapshot, Tracer, NONE_SPAN};

/// Upper bound on retained analyzer warnings; the oldest are dropped first.
const MAX_ANALYSIS_WARNINGS: usize = 1024;

/// Aggregate counters for one SQLCM instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SqlcmStats {
    /// Engine events seen (before rule filtering).
    pub events: u64,
    /// Rule-condition evaluations (one per object combination, §5).
    pub evaluations: u64,
    /// Conditions that evaluated true.
    pub fires: u64,
    /// Actions executed.
    pub actions: u64,
    /// Actions that failed (swallowed; see `last_error`).
    pub action_errors: u64,
}

struct SqlcmInner {
    engine: Arc<EngineInner>,
    clock: SharedClock,
    lats: RwLock<HashMap<String, Arc<Lat>>>,
    rules: RwLock<Vec<Arc<Registered>>>,
    /// The published dispatch plan the hot path runs on (RCU; `crate::plan`).
    plan: PlanCell,
    /// Serializes plan rebuilds: the registry snapshot is taken under this
    /// mutex *after* the caller's mutation, so concurrent registrations can
    /// never publish a plan missing one of them.
    plan_rebuild: Mutex<()>,
    /// Monotone plan epoch (0 = the empty plan installed at attach).
    plan_epoch: AtomicU64,
    timers: TimerRegistry,
    outbox: Arc<RecordingMailSink>,
    command_log: Arc<RecordingCommandSink>,
    mail_sink: RwLock<Arc<dyn MailSink>>,
    command_sink: RwLock<Arc<dyn CommandSink>>,
    events: AtomicU64,
    evaluations: AtomicU64,
    fires: AtomicU64,
    actions: AtomicU64,
    action_errors: AtomicU64,
    last_error: Mutex<Option<String>>,
    /// Warnings collected by the static analyzer across registrations.
    /// Deduplicated by (code, rule, message) and capped at
    /// [`MAX_ANALYSIS_WARNINGS`], oldest dropped first.
    analysis_warnings: Mutex<Vec<Diagnostic>>,
    /// Force coarse (always-clear) hoist invalidation, ignoring the
    /// analyzer's effect summaries. Differential-testing/rollback switch.
    coarse_invalidation: AtomicBool,
    /// Cross-rule subexpression sharing (CSE slots in the dispatch plan).
    /// On by default; differential-testing/rollback switch.
    cse_enabled: AtomicBool,
    /// Guard-indexed rule matching (see [`crate::guard`]). On by default;
    /// differential-testing/rollback switch.
    guard_index_enabled: AtomicBool,
    /// Self-telemetry state (probe/rule/LAT metrics, flight recorder).
    telemetry: Telem,
    /// Causal-trace state (sampling policy, trace ring, span pool).
    tracer: Tracer,
    /// Fault-containment state: breaker switchboard + overload ladder.
    containment: Containment,
    /// Bounded deferred-action queue (async external actions).
    deferred: DeferredQueue,
    /// Route external actions through the deferred queue instead of the
    /// raising thread. Off by default — the paper's synchronous semantics.
    async_actions: AtomicBool,
    /// Fast gate in front of the fault-injection plan (test control surface).
    faults_on: AtomicBool,
    faults: RwLock<Option<Arc<FaultState>>>,
    shutdown: AtomicBool,
}

/// A live SQLCM instance attached to an engine.
pub struct Sqlcm {
    inner: Arc<SqlcmInner>,
    timer_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    executor_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// The engine-facing adapter.
struct SqlcmMonitor {
    inner: Arc<SqlcmInner>,
}

thread_local! {
    static PROCESSING: Cell<bool> = const { Cell::new(false) };
    static PENDING: RefCell<VecDeque<Queued>> = const { RefCell::new(VecDeque::new()) };
    /// Pooled payload buffers; borrowed only in short spans that never run
    /// user code, so re-entrant probes cannot observe an active borrow.
    static SCRATCH: RefCell<PayloadScratch> = const {
        RefCell::new(PayloadScratch {
            objects: Vec::new(),
            values: Vec::new(),
        })
    };
    /// Provenance of the currently executing action: `(causing span,
    /// cascade depth of events it queues)`. Set only while a *traced* action
    /// runs, so deferred side effects — re-entrant probes and LAT evictions
    /// queued to [`PENDING`] — carry the cause link and depth of the trace.
    /// `(NONE_SPAN, 0)` whenever no traced action is on the stack.
    static CASCADE_ORIGIN: Cell<(u32, u32)> = const { Cell::new((NONE_SPAN, 0)) };
}

/// One deferred event awaiting the drain loop of [`SqlcmInner::dispatch_with`]:
/// the deferred-side-effect semantics of §5, plus the causal-trace links.
struct Queued {
    kind: RuleEvent,
    objects: Vec<Object>,
    /// Span that caused this event ([`NONE_SPAN`] when untraced).
    cause: u32,
    /// Cascade depth (root events are 0; each deferred hop adds 1).
    depth: u32,
}

/// Thread-local pools recycling the payload `Vec<Object>` and each object's
/// value buffer across events: steady-state payload assembly allocates
/// nothing. Bounds keep a pathological thread from hoarding buffers.
struct PayloadScratch {
    objects: Vec<Vec<Object>>,
    values: Vec<Vec<Value>>,
}

const OBJECT_POOL_BOUND: usize = 4;
const VALUE_POOL_BOUND: usize = 8;

impl Instrumentation for SqlcmMonitor {
    fn on_event(&self, event: &EngineEvent) {
        let n = self.inner.events.fetch_add(1, Ordering::Relaxed) + 1;
        let probe = event.kind();
        let telem = &self.inner.telemetry;
        // Per-kind attribution is a single sharded-counter increment and stays
        // on even when latency telemetry is off, so the per-probe counts always
        // sum to `SqlcmStats::events`.
        telem.probe_events[probe.index()].incr();
        let sw = telem.enabled().then(Stopwatch::start);
        // One atomic plan load and one bit test replace the two registry-lock
        // reads the old path took (`wants` + the dispatch-side index) — "no
        // monitoring is performed unless it is required by a rule" (§2.1).
        let plan = self.inner.plan.load();
        if plan.probe_mask.contains(probe) {
            self.inner.dispatch_event(plan, event);
        }
        if let Some(sw) = sw {
            telem.probe_latency[probe.index()].record(sw.elapsed_nanos());
        }
        // Containment checkpoint: a masked counter test per event; the cold
        // body (re-admission scan + ladder step) runs every
        // `LADDER_CHECK_INTERVAL` events.
        if n & (LADDER_CHECK_INTERVAL - 1) == 0 {
            self.inner.containment_checkpoint(n);
        }
    }

    fn name(&self) -> &str {
        "sqlcm"
    }

    /// Let the engine skip assembling events no rule subscribes to. One
    /// atomic load, no locks.
    fn wants(&self, kind: sqlcm_common::ProbeKind) -> bool {
        self.inner.plan.load().probe_mask.contains(kind)
    }
}

/// The rule-event kind of an engine event, without building payloads.
fn kind_of(event: &EngineEvent) -> RuleEvent {
    match event {
        EngineEvent::QueryStart(_) => RuleEvent::QueryStart,
        EngineEvent::QueryCompile(_) => RuleEvent::QueryCompile,
        EngineEvent::QueryCommit(_) => RuleEvent::QueryCommit,
        EngineEvent::QueryRollback(_) => RuleEvent::QueryRollback,
        EngineEvent::QueryCancel(_) => RuleEvent::QueryCancel,
        EngineEvent::QueryBlocked(_) => RuleEvent::QueryBlocked,
        EngineEvent::BlockReleased(_) => RuleEvent::BlockReleased,
        EngineEvent::TxnBegin(_) => RuleEvent::TxnBegin,
        EngineEvent::TxnCommit(_) => RuleEvent::TxnCommit,
        EngineEvent::TxnRollback(_) => RuleEvent::TxnRollback,
        EngineEvent::Login(_) => RuleEvent::Login,
        EngineEvent::Logout(_) => RuleEvent::Logout,
    }
}

/// Static display label of a compiled action, for trace action spans.
fn compiled_action_label(action: &CompiledAction) -> &'static str {
    match action {
        CompiledAction::Insert { .. } => "Insert",
        CompiledAction::Reset(_) => "Reset",
        CompiledAction::PersistLat { .. } => "PersistLat",
        CompiledAction::Other(a) => match a {
            Action::Insert { .. } => "Insert",
            Action::Reset { .. } => "Reset",
            Action::PersistObject { .. } => "PersistObject",
            Action::PersistLat { .. } => "PersistLat",
            Action::SendMail { .. } => "SendMail",
            Action::RunExternal { .. } => "RunExternal",
            Action::Cancel { .. } => "Cancel",
            Action::SetTimer { .. } => "SetTimer",
        },
    }
}

/// Build the context objects of an engine event.
fn payload_objects(event: &EngineEvent) -> Vec<Object> {
    match event {
        EngineEvent::QueryStart(q)
        | EngineEvent::QueryCompile(q)
        | EngineEvent::QueryCommit(q)
        | EngineEvent::QueryRollback(q)
        | EngineEvent::QueryCancel(q) => vec![objects::query_object(q)],
        EngineEvent::QueryBlocked(p) | EngineEvent::BlockReleased(p) => {
            let (blocker, blocked) = objects::block_pair_objects(p);
            vec![blocker, blocked]
        }
        EngineEvent::TxnBegin(t) | EngineEvent::TxnCommit(t) | EngineEvent::TxnRollback(t) => {
            vec![objects::txn_object(t)]
        }
        EngineEvent::Login(s) | EngineEvent::Logout(s) => vec![objects::session_object(s)],
    }
}

/// Build the context objects of an engine event into pooled buffers (the
/// zero-allocation twin of [`payload_objects`]).
fn payload_objects_in(event: &EngineEvent, out: &mut Vec<Object>, bufs: &mut Vec<Vec<Value>>) {
    out.clear();
    match event {
        EngineEvent::QueryStart(q)
        | EngineEvent::QueryCompile(q)
        | EngineEvent::QueryCommit(q)
        | EngineEvent::QueryRollback(q)
        | EngineEvent::QueryCancel(q) => {
            let buf = bufs.pop().unwrap_or_default();
            out.push(objects::query_object_in(q, buf));
        }
        EngineEvent::QueryBlocked(p) | EngineEvent::BlockReleased(p) => {
            let b1 = bufs.pop().unwrap_or_default();
            let b2 = bufs.pop().unwrap_or_default();
            let (blocker, blocked) = objects::block_pair_objects_in(p, b1, b2);
            out.push(blocker);
            out.push(blocked);
        }
        EngineEvent::TxnBegin(t) | EngineEvent::TxnCommit(t) | EngineEvent::TxnRollback(t) => {
            let buf = bufs.pop().unwrap_or_default();
            out.push(objects::txn_object_in(t, buf));
        }
        EngineEvent::Login(s) | EngineEvent::Logout(s) => {
            let buf = bufs.pop().unwrap_or_default();
            out.push(objects::session_object_in(s, buf));
        }
    }
}

impl SqlcmInner {
    // -------------------------------------------------- counted registry locks

    // Dispatch never touches the registry locks; registration, mutation and
    // action-interpretation paths acquire them through these counted helpers
    // so tests can pin the hot path at zero acquisitions. Pure observability
    // accessors (telemetry snapshot, `Sqlcm::lat` & co.) read the registries
    // uncounted so *reading* the counter does not perturb it.

    fn lats_read(&self) -> parking_lot::RwLockReadGuard<'_, HashMap<String, Arc<Lat>>> {
        self.telemetry.reg_lock_acquisitions.incr();
        self.lats.read()
    }

    fn lats_write(&self) -> parking_lot::RwLockWriteGuard<'_, HashMap<String, Arc<Lat>>> {
        self.telemetry.reg_lock_acquisitions.incr();
        self.lats.write()
    }

    fn rules_read(&self) -> parking_lot::RwLockReadGuard<'_, Vec<Arc<Registered>>> {
        self.telemetry.reg_lock_acquisitions.incr();
        self.rules.read()
    }

    fn rules_write(&self) -> parking_lot::RwLockWriteGuard<'_, Vec<Arc<Registered>>> {
        self.telemetry.reg_lock_acquisitions.incr();
        self.rules.write()
    }

    /// Rebuild and publish the dispatch plan from the current registries.
    /// Serialized by `plan_rebuild`: the snapshot is taken under the mutex
    /// *after* the caller's registry mutation, so any interleaving of
    /// concurrent registrations converges on a plan containing all of them.
    fn rebuild_plan(&self) {
        let _guard = self.plan_rebuild.lock();
        let epoch = self.plan_epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let rules = self.rules_read().clone();
        let lats = self.lats_read().clone();
        let coarse = self.coarse_invalidation.load(Ordering::Relaxed);
        let cse = self.cse_enabled.load(Ordering::Relaxed);
        let guard = self.guard_index_enabled.load(Ordering::Relaxed);
        let plan = DispatchPlan::build(epoch, &rules, &lats, coarse, cse, guard);
        self.plan.swap(Arc::new(plan));
        self.telemetry.plan_rebuilds.incr();
    }

    // ------------------------------------------------------------ dispatch

    /// Dispatch an engine event under `plan`: assemble its payload from the
    /// thread-local pools (zero allocations in steady state), run every
    /// subscribed rule, then recycle the buffers.
    fn dispatch_event(&self, plan: &DispatchPlan, event: &EngineEvent) {
        let kind = kind_of(event);
        if PROCESSING.with(|p| p.get()) {
            // Re-entrant probe (a rule action touched the engine): queue an
            // owned payload for the outer dispatch to drain, citing the
            // running action (if traced) as its cause.
            let (cause, depth) = CASCADE_ORIGIN.with(|c| c.get());
            PENDING.with(|q| {
                q.borrow_mut().push_back(Queued {
                    kind,
                    objects: payload_objects(event),
                    cause,
                    depth,
                })
            });
            return;
        }
        // Sampling decision: with tracing off this is one relaxed atomic
        // load — the clock is read only when the event is actually sampled.
        // Ladder stage ≥ 1 sheds the sampling entirely (counted, so the
        // operator can see what overload suppressed).
        let mut trace = if self.containment.stage() >= 1 {
            if self.tracer.sampling() != TraceSampling::Off {
                self.containment.shed_traces.incr();
            }
            None
        } else {
            self.tracer
                .sample_probe(event.kind(), || self.clock.now_micros())
        };
        let (mut objs, mut bufs) = SCRATCH.with(|s| {
            let mut sc = s.borrow_mut();
            (
                sc.objects.pop().unwrap_or_default(),
                std::mem::take(&mut sc.values),
            )
        });
        payload_objects_in(event, &mut objs, &mut bufs);
        self.dispatch_with(plan, &kind, &objs, &mut trace);
        if let Some(ctx) = trace {
            self.tracer.finish(ctx);
        }
        SCRATCH.with(|s| {
            let mut sc = s.borrow_mut();
            // Recycle: the value buffers go back into `bufs`, and `bufs` —
            // which still owns the pool's backing storage — is moved back
            // whole, so steady state never reallocates the pool itself.
            for o in objs.drain(..) {
                let mut v = o.into_values();
                v.clear();
                if bufs.len() < VALUE_POOL_BOUND {
                    bufs.push(v);
                }
            }
            sc.values = std::mem::take(&mut bufs);
            if sc.objects.len() < OBJECT_POOL_BOUND {
                sc.objects.push(std::mem::take(&mut objs));
            }
        });
    }

    /// Entry point for internally raised events (timers, self-monitoring,
    /// tests): enqueue if re-entrant, else process under the current plan.
    fn dispatch(&self, kind: RuleEvent, objects: Vec<Object>) {
        if PROCESSING.with(|p| p.get()) {
            let (cause, depth) = CASCADE_ORIGIN.with(|c| c.get());
            PENDING.with(|q| {
                q.borrow_mut().push_back(Queued {
                    kind,
                    objects,
                    cause,
                    depth,
                })
            });
            return;
        }
        let plan = self.plan.load();
        let mut trace = self.tracer.sample_internal(|| self.clock.now_micros());
        self.dispatch_with(plan, &kind, &objects, &mut trace);
        if let Some(ctx) = trace {
            self.tracer.finish(ctx);
        }
    }

    /// Process one event and drain whatever the processing generated, all
    /// under a single plan: "for any given event, all applicable rules are
    /// triggered before any later event is processed" — the applicable set is
    /// whatever plan was current when the batch started. When `trace` is
    /// active, the root and every drained cascade hop record into it.
    fn dispatch_with(
        &self,
        plan: &DispatchPlan,
        kind: &RuleEvent,
        objects: &[Object],
        trace: &mut Option<TraceCtx>,
    ) {
        PROCESSING.with(|p| p.set(true));
        self.handle_one(plan, kind, objects, trace, NONE_SPAN, 0);
        loop {
            let next = PENDING.with(|q| q.borrow_mut().pop_front());
            match next {
                Some(q) => self.handle_one(plan, &q.kind, &q.objects, trace, q.cause, q.depth),
                None => break,
            }
        }
        PROCESSING.with(|p| p.set(false));
    }

    /// Evaluate every rule subscribed to this event, in registration order.
    /// `cause`/`depth` are the trace-provenance link of a drained deferred
    /// event ([`NONE_SPAN`]/0 for the root).
    fn handle_one(
        &self,
        plan: &DispatchPlan,
        kind: &RuleEvent,
        objects: &[Object],
        trace: &mut Option<TraceCtx>,
        cause: u32,
        depth: u32,
    ) {
        let Some(ep) = plan.event_plan(kind) else {
            return;
        };
        let event_span = match trace.as_mut() {
            Some(ctx) => ctx.open_event(ep.label.clone(), cause, depth),
            None => NONE_SPAN,
        };
        // Enabled-ness snapshot: fixed before any rule runs, so an action
        // disabling a later rule mid-event does not affect the current event
        // (see `Rule::set_enabled` for the pinned semantics).
        // 256 matches the guard-index candidate bitset below: rule counts
        // the t10 bench certifies as zero-alloc stay zero-alloc here too.
        const INLINE_RULES: usize = 256;
        let n = ep.rules.len();
        let mut enabled_inline = [false; INLINE_RULES];
        let mut enabled_heap;
        let enabled: &mut [bool] = if n <= INLINE_RULES {
            &mut enabled_inline[..n]
        } else {
            enabled_heap = vec![false; n];
            &mut enabled_heap
        };
        // Ladder stage ≥ 2: low-priority rules are sampled 1-in-2^k — the
        // skip shows up in `shed_evaluations`, never as a silent gap.
        let shedding = self.containment.stage() >= 2;
        let sample_mask = if shedding {
            self.containment.sample_mask()
        } else {
            0
        };
        for (i, pr) in ep.rules.iter().enumerate() {
            let mut on = pr.reg.rule.is_enabled();
            if on
                && shedding
                && pr.low_priority
                && self.containment.shed_seq.fetch_add(1, Ordering::Relaxed) & sample_mask != 0
            {
                on = false;
                self.containment.shed_evaluations.incr();
            }
            enabled[i] = on;
        }
        // Shared hoist-slot store for this event: each slot is fetched at
        // most once and reused by every rule referencing that LAT.
        const INLINE_SLOTS: usize = 8;
        let m = ep.hoisted.len();
        let mut slots_inline: [HoistState; INLINE_SLOTS] = Default::default();
        let mut slots_heap;
        let slots: &mut [HoistState] = if m <= INLINE_SLOTS {
            &mut slots_inline[..m]
        } else {
            slots_heap = std::iter::repeat_with(HoistState::default)
                .take(m)
                .collect::<Vec<_>>();
            &mut slots_heap
        };
        // Shared-subexpression value store: the first rule to evaluate a
        // shared condition subtree publishes its value here, later sharers
        // load it (see `plan::CseSlot` and `vm::Inst::CseLoad`).
        const INLINE_CSE: usize = 8;
        let k = ep.cse.len();
        let mut cse_inline: [Option<Value>; INLINE_CSE] = Default::default();
        let mut cse_heap;
        let cse: &mut [Option<Value>] = if k <= INLINE_CSE {
            &mut cse_inline[..k]
        } else {
            cse_heap = vec![None; k];
            &mut cse_heap
        };
        // Guard-index probe: one pass over the per-event index yields the
        // candidate bitset (in registration order — the bitset only *skips*
        // rules, it never reorders them). A pruned rule's condition is
        // provably false-or-null and infallible, so skipping the VM is
        // invisible everywhere except the `matching` telemetry slice.
        const INLINE_WORDS: usize = 4;
        let mut cand_inline = [0u64; INLINE_WORDS];
        let mut cand_heap;
        let mut probed = false;
        let mut cand: &[u64] = &[];
        if let Some(gi) = ep.guards.as_ref() {
            let w = gi.words();
            let bits: &mut [u64] = if w <= INLINE_WORDS {
                &mut cand_inline[..w]
            } else {
                cand_heap = vec![0u64; w];
                &mut cand_heap
            };
            probed = gi.probe(objects, bits);
            cand = bits;
        }
        let mut pruned = 0u64;
        let mut kept = 0u64;
        for (i, pr) in ep.rules.iter().enumerate() {
            if !enabled[i] {
                continue;
            }
            if probed && cand[i >> 6] & (1 << (i & 63)) == 0 {
                pruned += 1;
                self.pruned_rule(ep, i, pr, objects, trace, event_span);
            } else {
                kept += u64::from(probed);
                self.evaluate_rule(ep, pr, objects, slots, cse, trace, event_span, depth);
            }
        }
        if probed {
            self.telemetry.guard_probes.incr();
            if pruned > 0 {
                self.telemetry.rules_pruned.add(pruned);
            }
            if kept > 0 {
                self.telemetry.candidate_rules.add(kept);
            }
        }
        if let Some(ctx) = trace.as_mut() {
            ctx.close(event_span);
        }
    }

    /// Bookkeeping for a guard-pruned rule: the outcome is exactly what the
    /// VM would have produced — a counted, non-firing, error-free
    /// evaluation — without running it. The breaker sees the same admission
    /// and success the evaluated path would report, and a sampled trace
    /// explains which guard was violated.
    fn pruned_rule(
        &self,
        ep: &EventPlan,
        idx: usize,
        pr: &PlanRule,
        objects: &[Object],
        trace: &mut Option<TraceCtx>,
        event_span: u32,
    ) {
        let reg = &*pr.reg;
        let mut trial = false;
        if self.containment.breakers_enabled() {
            match reg.breaker.gate() {
                BreakerGate::Proceed => {}
                BreakerGate::Trial => trial = true,
                BreakerGate::Skip => {
                    self.containment.breaker_skips.incr();
                    return;
                }
            }
        }
        reg.rule.evaluations.fetch_add(1, Ordering::Relaxed);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        if let Some(ctx) = trace.as_mut() {
            let rule_span = ctx.open_rule(event_span, &reg.rule.name);
            let why = ep
                .guards
                .as_ref()
                .map(|gi| gi.explain(idx, objects))
                .unwrap_or_default();
            ctx.rule_outcome(rule_span, false, why);
            ctx.close(rule_span);
        }
        self.record_breaker_outcome(reg, trial, false, None);
    }

    /// Does any registered rule subscribe to this event? One atomic plan
    /// load — no locks (used by the eviction path while actions run).
    fn has_rules_for(&self, kind: &RuleEvent) -> bool {
        self.plan.load().has_event(kind)
    }

    /// Evaluate one rule against the event context, iterating over live objects
    /// for classes the event does not cover (§5.2). `slots` is the event-shared
    /// hoisted LAT-row store.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_rule(
        &self,
        ep: &EventPlan,
        pr: &PlanRule,
        base: &[Object],
        slots: &mut [HoistState],
        cse: &mut [Option<Value>],
        trace: &mut Option<TraceCtx>,
        event_span: u32,
        depth: u32,
    ) {
        // Fast path (the overwhelmingly common case, and the one Figure 2
        // stresses): every class the condition references is already in the
        // event payload — evaluate in place, no cloning, no combo machinery.
        if pr
            .reg
            .cond_classes
            .iter()
            .all(|c| base.iter().any(|o| o.class == *c))
        {
            self.evaluate_combo(ep, pr, base, slots, cse, trace, event_span, depth);
            return;
        }
        let covered: Vec<&ClassName> = base.iter().map(|o| &o.class).collect();
        let missing: Vec<&ClassName> = pr
            .reg
            .cond_classes
            .iter()
            .filter(|c| !covered.contains(c))
            .collect();

        // Build the iteration sets for missing classes.
        let mut query_set: Option<Vec<Object>> = None;
        let mut pair_set: Option<Vec<(Object, Object)>> = None;
        let mut table_set: Option<Vec<Object>> = None;
        for class in &missing {
            match class {
                ClassName::Query => {
                    let now = self.clock.now_micros();
                    query_set = Some(
                        self.engine
                            .active
                            .handles()
                            .iter()
                            .map(|h| objects::query_object(&h.snapshot(now)))
                            .collect(),
                    );
                }
                ClassName::Blocker | ClassName::Blocked => {
                    if pair_set.is_none() {
                        pair_set = Some(
                            self.engine
                                .locks
                                .blocked_pairs()
                                .iter()
                                .map(objects::block_pair_objects)
                                .collect(),
                        );
                    }
                }
                ClassName::Table => {
                    table_set = Some(
                        self.engine
                            .catalog
                            .tables()
                            .iter()
                            .map(|t| objects::table_object(t))
                            .collect(),
                    );
                }
                // Transactions, sessions, timers and evicted rows have no
                // iterable live registry; a rule needing one outside its event
                // context simply never fires.
                _ => return,
            }
        }

        // Cartesian product of (base) × (query set?) × (pair set?) × (tables?).
        let queries = query_set.map(|q| q.into_iter().map(Some).collect::<Vec<_>>());
        let queries = queries.unwrap_or_else(|| vec![None]);
        let pairs = pair_set.map(|p| p.into_iter().map(Some).collect::<Vec<_>>());
        let pairs = pairs.unwrap_or_else(|| vec![None]);
        let tables = table_set.map(|t| t.into_iter().map(Some).collect::<Vec<_>>());
        let tables = tables.unwrap_or_else(|| vec![None]);

        for q in &queries {
            for p in &pairs {
                for t in &tables {
                    let mut combo: Vec<Object> = base.to_vec();
                    if let Some(q) = q {
                        combo.push(q.clone());
                    }
                    if let Some((blocker, blocked)) = p {
                        combo.push(blocker.clone());
                        combo.push(blocked.clone());
                    }
                    if let Some(t) = t {
                        combo.push(t.clone());
                    }
                    self.evaluate_combo(ep, pr, &combo, slots, cse, trace, event_span, depth);
                }
            }
        }
    }

    /// Evaluate the condition against one object combination — LAT rows come
    /// from the event-shared hoist `slots` where the plan hoisted the lookup —
    /// and run the actions when it fires.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_combo(
        &self,
        ep: &EventPlan,
        pr: &PlanRule,
        combo: &[Object],
        slots: &mut [HoistState],
        cse: &mut [Option<Value>],
        trace: &mut Option<TraceCtx>,
        event_span: u32,
        depth: u32,
    ) {
        let reg = &*pr.reg;
        // Breaker admission. `Closed` (the steady state) costs one relaxed
        // load; a skipped evaluation is not counted as an evaluation — the
        // rule is effectively out of service.
        let mut trial = false;
        if self.containment.breakers_enabled() {
            match reg.breaker.gate() {
                BreakerGate::Proceed => {}
                BreakerGate::Trial => trial = true,
                BreakerGate::Skip => {
                    self.containment.breaker_skips.incr();
                    return;
                }
            }
        }
        reg.rule.evaluations.fetch_add(1, Ordering::Relaxed);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let rule_span = match trace.as_mut() {
            Some(ctx) => ctx.open_rule(event_span, &reg.rule.name),
            None => NONE_SPAN,
        };
        if let Some(msg) = &pr.broken {
            // A cond-LAT was dropped after registration: the evaluation is
            // still counted (matching the old per-evaluation resolution), then
            // recorded as an error.
            self.record_error(&reg.rule.name, msg.clone());
            if let Some(ctx) = trace.as_mut() {
                ctx.rule_outcome(rule_span, false, format!("broken: {msg}"));
                ctx.close(rule_span);
            }
            // A broken rule errors every evaluation by design; feeding that
            // into the breaker window would quarantine it and *hide* the
            // per-evaluation errors the old resolution surfaced. Only a
            // half-open trial observes it (and re-opens).
            if trial {
                self.record_breaker_outcome(reg, true, true, None);
            }
            return;
        }
        // One clock read here, one after the condition, one after the actions
        // (only when the rule fires) — the condition and action spans are both
        // derived from the same stopwatch.
        let sw = self.telemetry.enabled().then(Stopwatch::start);

        // Phase A — materialize LAT rows for the condition (implicit ∃, §5.2).
        // Hoisted lookups land in the event-shared `slots` (fetched at most
        // once per event, reused by every rule on the same LAT); non-hoistable
        // ones go to a per-combo local. Inline storage covers realistic rule
        // shapes, so the steady state allocates nothing here.
        const INLINE_LATS: usize = 8;
        let n_lats = pr.lats.len();
        let mut local_inline: [Option<Vec<Value>>; INLINE_LATS] = Default::default();
        let mut local_heap;
        let local: &mut [Option<Vec<Value>>] = if n_lats <= INLINE_LATS {
            &mut local_inline[..n_lats]
        } else {
            local_heap = vec![None; n_lats];
            &mut local_heap
        };
        for (i, lat) in pr.lats.iter().enumerate() {
            let slot = pr.lat_slots[i];
            if slot == NO_HOIST {
                self.telemetry.lat_row_fetches.incr();
                local[i] = combo
                    .iter()
                    .find(|o| o.class == *lat.spec.source_class())
                    .and_then(|o| lat.lookup_for(o));
                if let Some(ctx) = trace.as_mut() {
                    ctx.lat_lookup(rule_span, &lat.spec.name, local[i].is_some(), false);
                }
            } else {
                let slot = &mut slots[slot as usize];
                match slot {
                    HoistState::Fetched(row) => {
                        self.telemetry.hoisted_lookup_hits.incr();
                        if let Some(ctx) = trace.as_mut() {
                            ctx.lat_lookup(rule_span, &lat.spec.name, row.is_some(), true);
                        }
                    }
                    HoistState::Empty => {
                        self.telemetry.lat_row_fetches.incr();
                        let row = combo
                            .iter()
                            .find(|o| o.class == *lat.spec.source_class())
                            .and_then(|o| lat.lookup_for(o));
                        if let Some(ctx) = trace.as_mut() {
                            ctx.lat_lookup(rule_span, &lat.spec.name, row.is_some(), false);
                        }
                        *slot = HoistState::Fetched(row);
                    }
                }
            }
        }

        // Phase B — borrow the rows into fixed-layout bindings indexed by the
        // rule's `cond_lats` order (what `ir::ROp::LatCol` points into).
        let slots_ro: &[HoistState] = &*slots;
        let row_of = |i: usize| {
            let slot = pr.lat_slots[i];
            if slot == NO_HOIST {
                local[i].as_deref()
            } else {
                match &slots_ro[slot as usize] {
                    HoistState::Fetched(row) => row.as_deref(),
                    HoistState::Empty => None,
                }
            }
        };
        const INLINE_BINDS: usize = 8;
        let mut bind_inline: [std::mem::MaybeUninit<LatBinding>; INLINE_BINDS] =
            [std::mem::MaybeUninit::uninit(); INLINE_BINDS];
        let bind_heap: Vec<LatBinding>;
        let bindings: &[LatBinding] = if n_lats <= INLINE_BINDS {
            for (i, slot) in bind_inline.iter_mut().take(n_lats).enumerate() {
                slot.write(LatBinding {
                    name: &reg.cond_lats[i],
                    lat: &pr.lats[i],
                    row: row_of(i),
                });
            }
            // SAFETY: the first `n_lats` elements were initialized just above,
            // and `LatBinding` is `Copy` (no drop obligations).
            unsafe { std::slice::from_raw_parts(bind_inline.as_ptr().cast::<LatBinding>(), n_lats) }
        } else {
            bind_heap = (0..n_lats)
                .map(|i| LatBinding {
                    name: &reg.cond_lats[i],
                    lat: &pr.lats[i],
                    row: row_of(i),
                })
                .collect();
            &bind_heap
        };
        let ctx = EvalContext {
            objects: combo,
            lat_rows: bindings,
        };
        let mut cond_error = false;
        let mut vm_stats = crate::vm::VmStats::default();
        let fire = match &pr.program {
            None => true,
            Some(prog) => match crate::vm::eval_condition(prog, &ctx, cse, &mut vm_stats) {
                Ok(b) => b,
                Err(e) => {
                    cond_error = true;
                    reg.rule.action_errors.fetch_add(1, Ordering::Relaxed);
                    self.record_error(
                        &reg.rule.name,
                        format!("condition of rule {} failed: {e}", reg.rule.name),
                    );
                    false
                }
            },
        };
        if vm_stats.instructions != 0 {
            self.telemetry.vm_instructions.add(vm_stats.instructions);
        }
        if vm_stats.cse_hits != 0 {
            self.telemetry.cse_hits.add(vm_stats.cse_hits);
        }
        let cond_nanos = sw.as_ref().map(|s| s.elapsed_nanos());
        if let Some(ns) = cond_nanos {
            reg.cond_latency.record(ns);
        }
        // The explainer re-resolves the condition's references — allocation
        // and extra lookups happen only on sampled evaluations.
        if let Some(tctx) = trace.as_mut() {
            let why = explain_condition(reg.compiled.as_deref(), &ctx, fire, cond_error);
            tctx.rule_outcome(rule_span, fire, why);
        }
        let trace_id = trace.as_ref().map(|c| c.trace_id()).unwrap_or(0);
        if !fire {
            // Errored evaluations are worth replaying; silent non-fires are not.
            if cond_error {
                if let Some(ns) = cond_nanos {
                    self.telemetry.recorder.record(FlightRecord {
                        seq: 0,
                        event: reg.rule.event.to_string(),
                        rule: reg.rule.name.clone(),
                        fired: false,
                        actions: 0,
                        errors: 1,
                        duration_nanos: ns,
                        trace_id,
                    });
                }
            }
            if let Some(tctx) = trace.as_mut() {
                tctx.close(rule_span);
            }
            self.record_breaker_outcome(reg, trial, cond_error, cond_nanos);
            return;
        }
        reg.rule.fires.fetch_add(1, Ordering::Relaxed);
        self.fires.fetch_add(1, Ordering::Relaxed);
        let mut errors = 0u32;
        for action in &reg.actions {
            self.actions.fetch_add(1, Ordering::Relaxed);
            reg.rule.executed_actions.fetch_add(1, Ordering::Relaxed);
            let action_span = match trace.as_mut() {
                Some(tctx) => {
                    let s = tctx.open_action(rule_span, compiled_action_label(action));
                    // Deferred side effects raised by this action (re-entrant
                    // probes, LAT evictions) cite it as their cascade cause.
                    CASCADE_ORIGIN.with(|c| c.set((s, depth + 1)));
                    s
                }
                None => NONE_SPAN,
            };
            let result =
                self.execute_compiled_action(&reg.rule.name, action, &ctx, trace, action_span);
            if let Some(tctx) = trace.as_mut() {
                CASCADE_ORIGIN.with(|c| c.set((NONE_SPAN, 0)));
                if result.is_err() {
                    tctx.action_failed(action_span);
                }
                tctx.close(action_span);
            }
            if let Err(e) = result {
                errors += 1;
                reg.rule.action_errors.fetch_add(1, Ordering::Relaxed);
                self.action_errors.fetch_add(1, Ordering::Relaxed);
                self.record_error(
                    &reg.rule.name,
                    format!("action of rule {} failed: {e}", reg.rule.name),
                );
            }
        }
        if let Some(tctx) = trace.as_mut() {
            tctx.close(rule_span);
        }
        let total_nanos = sw.as_ref().map(|s| s.elapsed_nanos());
        if let (Some(total), Some(cond_ns)) = (total_nanos, cond_nanos) {
            reg.action_latency.record(total.saturating_sub(cond_ns));
            self.telemetry.recorder.record(FlightRecord {
                seq: 0,
                event: reg.rule.event.to_string(),
                rule: reg.rule.name.clone(),
                fired: true,
                actions: reg.actions.len() as u32,
                errors,
                duration_nanos: total,
                trace_id,
            });
        }
        // Phase C — a fired rule's Insert/Reset may have changed the hoisted
        // rows; drop those slots so later rules on this event re-fetch
        // (read-your-predecessors'-writes, §5 ordering). Entries the analyzer
        // proved disjoint from every reader keep a live snapshot: an Insert
        // never moves an existing row's key, so only the missing-row outcome
        // (which the insert may have flipped) is discarded.
        for inv in &pr.invalidates {
            let slot = &mut slots[inv.slot as usize];
            let cleared = if inv.only_if_missing {
                match slot {
                    HoistState::Fetched(Some(_)) => {
                        self.telemetry.hoist_invalidations_avoided.incr();
                        false
                    }
                    HoistState::Fetched(None) => {
                        *slot = HoistState::Empty;
                        true
                    }
                    HoistState::Empty => false,
                }
            } else {
                let had = !matches!(slot, HoistState::Empty);
                *slot = HoistState::Empty;
                had
            };
            // A dropped row snapshot takes every cached shared value computed
            // from it along — the CSE slot must never outlive its inputs.
            // A kept snapshot (`only_if_missing` above) keeps its values too.
            if cleared {
                for (ci, cs) in ep.cse.iter().enumerate() {
                    if cs.deps.contains(&inv.slot) {
                        cse[ci] = None;
                    }
                }
            }
        }
        self.record_breaker_outcome(reg, trial, errors > 0, total_nanos);
    }

    fn execute_compiled_action(
        &self,
        rule: &str,
        action: &CompiledAction,
        ctx: &EvalContext,
        trace: &mut Option<TraceCtx>,
        action_span: u32,
    ) -> Result<()> {
        match action {
            CompiledAction::Insert {
                lat,
                eviction_event,
            } => self.insert_into_lat(lat, Some(eviction_event), ctx, trace, action_span),
            CompiledAction::Reset(lat) => {
                lat.reset();
                if let Some(tctx) = trace.as_mut() {
                    tctx.lat_mutation(action_span, &lat.spec.name, "reset", 0);
                }
                Ok(())
            }
            CompiledAction::PersistLat { table, lat } => self.persist_lat_rows(rule, lat, table),
            CompiledAction::Other(a) => self.execute_action(rule, a, ctx, trace, action_span),
        }
    }

    /// The `Insert(LATName)` hot path: fold the in-scope source object into the
    /// LAT and queue eviction events if (and only if) a rule subscribes — "no
    /// monitoring is performed unless it is required" (§2.1).
    fn insert_into_lat(
        &self,
        lat: &Arc<Lat>,
        eviction_event: Option<&RuleEvent>,
        ctx: &EvalContext,
        trace: &mut Option<TraceCtx>,
        action_span: u32,
    ) -> Result<()> {
        let obj = ctx
            .objects
            .iter()
            .find(|o| o.class == *lat.spec.source_class())
            .ok_or_else(|| {
                Error::Monitor(format!(
                    "no object of class {} in scope for Insert({})",
                    lat.spec.source_class(),
                    lat.spec.name
                ))
            })?;
        let event_key_storage;
        let event_key = match eviction_event {
            Some(e) => e,
            None => {
                event_key_storage = RuleEvent::LatEviction(lat.spec.name.clone());
                &event_key_storage
            }
        };
        let want_evicted = self.has_rules_for(event_key);
        let evicted = lat.insert_and(obj, want_evicted)?;
        // The mutation span is the provenance anchor: each eviction event
        // queued below cites it as `cause`, at the depth the running action
        // established (CASCADE_ORIGIN).
        let mutation_span = match trace.as_mut() {
            Some(tctx) => {
                tctx.lat_mutation(action_span, &lat.spec.name, "insert", evicted.len() as u32)
            }
            None => NONE_SPAN,
        };
        if want_evicted && !evicted.is_empty() {
            let depth = CASCADE_ORIGIN.with(|c| c.get().1);
            let name = lat.spec.name.clone();
            let columns = lat.columns();
            for row in evicted {
                let obj = evicted_object(&name, columns.clone(), row);
                // Deferred: queued and processed after the current event's
                // rules complete (§5).
                PENDING.with(|q| {
                    q.borrow_mut().push_back(Queued {
                        kind: RuleEvent::LatEviction(name.clone()),
                        objects: vec![obj],
                        cause: mutation_span,
                        depth,
                    })
                });
            }
        }
        Ok(())
    }

    fn persist_lat_rows(&self, rule: &str, lat: &Arc<Lat>, table: &str) -> Result<()> {
        let now = self.clock.now_micros();
        let rows: Vec<Vec<Value>> = lat
            .rows_ordered()
            .into_iter()
            .map(|mut r| {
                // "plus one additional column storing a timestamp of when the
                // rule writing a row was triggered" (§4.3).
                r.push(Value::Timestamp(now));
                r
            })
            .collect();
        // The snapshot above is taken synchronously either way — async mode
        // defers only the write, not the paper-mandated read point.
        if self.async_actions.load(Ordering::Relaxed) {
            self.enqueue_deferred(
                rule,
                DeferredKind::Persist {
                    table: table.to_string(),
                    rows,
                },
            );
            return Ok(());
        }
        self.check_fault(FaultKind::Persist)?;
        persist_rows(&self.engine, table, rows)?;
        Ok(())
    }

    fn execute_action(
        &self,
        rule: &str,
        action: &Action,
        ctx: &EvalContext,
        trace: &mut Option<TraceCtx>,
        action_span: u32,
    ) -> Result<()> {
        match action {
            Action::Insert { lat } => {
                let lat = self.lat(lat)?;
                self.insert_into_lat(&lat, None, ctx, trace, action_span)
            }
            Action::Reset { lat } => {
                let lat = self.lat(lat)?;
                lat.reset();
                if let Some(tctx) = trace.as_mut() {
                    tctx.lat_mutation(action_span, &lat.spec.name, "reset", 0);
                }
                Ok(())
            }
            Action::PersistObject {
                table,
                class,
                attrs,
            } => {
                let obj = ctx
                    .objects
                    .iter()
                    .find(|o| o.class == *class)
                    .ok_or_else(|| {
                        Error::Monitor(format!("no object of class {class} in scope"))
                    })?;
                let row: Vec<Value> = attrs
                    .iter()
                    .map(|a| {
                        obj.get(a).cloned().ok_or_else(|| {
                            Error::Monitor(format!("class {class} has no attribute {a}"))
                        })
                    })
                    .collect::<Result<_>>()?;
                // Resolution errors above stay synchronous (they depend on the
                // evaluation context); only the table write is deferrable.
                if self.async_actions.load(Ordering::Relaxed) {
                    self.enqueue_deferred(
                        rule,
                        DeferredKind::Persist {
                            table: table.clone(),
                            rows: vec![row],
                        },
                    );
                    return Ok(());
                }
                self.check_fault(FaultKind::Persist)?;
                persist_rows(&self.engine, table, vec![row])?;
                Ok(())
            }
            Action::PersistLat { table, lat } => {
                let lat = self.lat(lat)?;
                self.persist_lat_rows(rule, &lat, table)
            }
            Action::SendMail { to, template } => {
                let body = substitute(template, ctx);
                let to = substitute(to, ctx);
                if self.async_actions.load(Ordering::Relaxed) {
                    self.enqueue_deferred(rule, DeferredKind::Mail { to, body });
                    return Ok(());
                }
                self.check_fault(FaultKind::Mail)?;
                self.mail_sink.read().send(&to, &body);
                Ok(())
            }
            Action::RunExternal { template } => {
                let cmd = substitute(template, ctx);
                if self.async_actions.load(Ordering::Relaxed) {
                    self.enqueue_deferred(rule, DeferredKind::Command { cmd });
                    return Ok(());
                }
                self.check_fault(FaultKind::Command)?;
                self.command_sink.read().run(&cmd);
                Ok(())
            }
            Action::Cancel { class } => {
                let obj = ctx
                    .objects
                    .iter()
                    .find(|o| o.class == *class)
                    .ok_or_else(|| {
                        Error::Monitor(format!("no object of class {class} in scope"))
                    })?;
                let id = obj
                    .get("ID")
                    .and_then(|v| v.as_i64())
                    .ok_or_else(|| Error::Monitor("object has no ID".into()))?;
                // Only signals the executing thread(s); see §5.
                self.engine.active.cancel(id as u64);
                Ok(())
            }
            Action::SetTimer {
                timer,
                period_micros,
                number_alarms,
            } => {
                self.timers.set(timer, *period_micros, *number_alarms);
                Ok(())
            }
        }
    }

    fn lat(&self, name: &str) -> Result<Arc<Lat>> {
        self.lats_read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::Monitor(format!("unknown LAT {name}")))
    }

    /// Record a swallowed error both globally (`last_error`) and in the
    /// bounded per-rule map.
    fn record_error(&self, rule: &str, msg: String) {
        self.telemetry.record_rule_error(rule, msg.clone());
        *self.last_error.lock() = Some(msg);
    }

    // ------------------------------------------------------------ containment

    /// Cold containment checkpoint, every [`LADDER_CHECK_INTERVAL`] events:
    /// scan quarantined rules for cooldown-expired re-admission, then step the
    /// overload ladder. With no quarantined rules and no policy installed,
    /// this is two relaxed loads — the hot-path pins stay intact.
    fn containment_checkpoint(&self, events_now: u64) {
        self.scan_quarantined();
        if self.containment.policy_enabled() {
            if let Some(t) = self
                .containment
                .ladder_step(self.clock.now_micros(), events_now)
            {
                self.on_ladder_transition(t);
            }
        }
    }

    /// Scan quarantined rules for cooldown-expired `Open → HalfOpen`
    /// re-admission; republish the plan when any rule moved. Returns how many
    /// breakers re-opened.
    fn scan_quarantined(&self) -> u32 {
        let plan = self.plan.load();
        if plan.quarantined.is_empty() {
            return 0;
        }
        let now = self.clock.now_micros();
        let mut reopened = 0;
        for reg in &plan.quarantined {
            if reg.breaker.maybe_half_open(now) {
                self.containment.breaker_reopens.incr();
                self.note_breaker("Breaker.Reopen", &reg.rule.name, 0);
                reopened += 1;
            }
        }
        if reopened > 0 {
            // Republish with the half-open rules back in their event plans;
            // their gates admit exactly one trial each.
            self.rebuild_plan();
        }
        reopened
    }

    /// Count, flight-record, and (when a rule subscribes) dispatch a ladder
    /// transition as a synthetic `Monitor`-class event.
    fn on_ladder_transition(&self, t: LadderTransition) {
        self.containment.transitions.incr();
        self.telemetry.recorder.record(FlightRecord {
            seq: 0,
            event: "Monitor.Overload".to_string(),
            rule: format!("{}->{}", t.from.as_str(), t.to.as_str()),
            fired: false,
            actions: 0,
            errors: 0,
            duration_nanos: t.rate_events_per_sec as u64,
            trace_id: 0,
        });
        if self.has_rules_for(&RuleEvent::MonitorTick) {
            let health = self.telemetry_snapshot().health();
            self.dispatch(
                RuleEvent::MonitorTick,
                vec![objects::monitor_object(&health)],
            );
        }
    }

    /// Feed one evaluation outcome into the rule's breaker (or resolve its
    /// half-open trial) and quarantine on a trip. No-cost when breakers are
    /// disabled.
    fn record_breaker_outcome(
        &self,
        reg: &Registered,
        trial: bool,
        error: bool,
        dur_nanos: Option<u64>,
    ) {
        if !self.containment.breakers_enabled() {
            return;
        }
        if trial {
            if error {
                if reg.breaker.trial_failed(self.clock.now_micros()) {
                    self.containment.breaker_trips.incr();
                    self.note_breaker("Breaker.Trip", &reg.rule.name, 1);
                    self.record_error(
                        &reg.rule.name,
                        format!(
                            "rule {} failed its half-open trial; breaker re-opened",
                            reg.rule.name
                        ),
                    );
                    self.rebuild_plan();
                }
            } else {
                reg.breaker.trial_succeeded();
                self.containment.breaker_closes.incr();
                self.note_breaker("Breaker.Close", &reg.rule.name, 0);
            }
            return;
        }
        let budget = reg.breaker.latency_budget_nanos();
        let slow = matches!(dur_nanos, Some(ns) if budget > 0 && ns > budget);
        let tighten = self.containment.stage() >= 3;
        if reg
            .breaker
            .record_outcome(error, slow, tighten, || self.clock.now_micros())
        {
            self.containment.breaker_trips.incr();
            self.note_breaker("Breaker.Trip", &reg.rule.name, 1);
            self.record_error(
                &reg.rule.name,
                format!(
                    "rule {} tripped its circuit breaker; quarantined",
                    reg.rule.name
                ),
            );
            self.rebuild_plan();
        }
    }

    /// Flight-record a breaker transition (trip/reopen/close) so the recorder
    /// shows *why* a rule disappeared from (or returned to) the plan.
    fn note_breaker(&self, what: &str, rule: &str, errors: u32) {
        self.telemetry.recorder.record(FlightRecord {
            seq: 0,
            event: what.to_string(),
            rule: rule.to_string(),
            fired: false,
            actions: 0,
            errors,
            duration_nanos: 0,
            trace_id: 0,
        });
    }

    /// Consult the installed fault plan (if any) before a sink call. One
    /// relaxed load when injection is off.
    fn check_fault(&self, kind: FaultKind) -> Result<()> {
        if !self.faults_on.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some(faults) = self.faults.read().clone() else {
            return Ok(());
        };
        if faults.plan.stall_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(faults.plan.stall_micros));
        }
        if faults.should_fail(kind) {
            return Err(Error::Monitor(format!("injected {} fault", kind.as_str())));
        }
        Ok(())
    }

    fn enqueue_deferred(&self, rule: &str, kind: DeferredKind) {
        self.deferred.enqueue(rule, kind, self.clock.now_micros());
    }

    /// Drain every currently-due deferred action, executing, retrying, or
    /// exhausting each. Returns the number of successful executions.
    fn pump_deferred(&self) -> u32 {
        let now = self.clock.now_micros();
        let mut done = 0u32;
        while let Some(mut a) = self.deferred.take_due(now) {
            if self.deferred.already_executed(a.key) {
                continue;
            }
            match self.execute_deferred(&a) {
                Ok(()) => {
                    self.deferred.mark_executed(a.key);
                    self.breaker_outcome_by_name(&a.rule, false);
                    done += 1;
                }
                Err(e) => {
                    a.attempts += 1;
                    self.action_errors.fetch_add(1, Ordering::Relaxed);
                    self.record_error(
                        &a.rule,
                        format!(
                            "deferred {} action of rule {} failed (attempt {}): {e}",
                            a.kind.kind_str(),
                            a.rule,
                            a.attempts
                        ),
                    );
                    self.breaker_outcome_by_name(&a.rule, true);
                    let rule = a.rule.clone();
                    if let AttemptOutcome::Exhausted = self.deferred.reschedule_or_exhaust(a, now) {
                        self.record_error(
                            &rule,
                            format!("deferred action of rule {rule} exhausted its retries"),
                        );
                    }
                }
            }
        }
        done
    }

    /// Execute one resolved deferred action against the live sinks (with
    /// fault injection applied at the same points as the sync path).
    fn execute_deferred(&self, a: &DeferredAction) -> Result<()> {
        match &a.kind {
            DeferredKind::Mail { to, body } => {
                self.check_fault(FaultKind::Mail)?;
                self.mail_sink.read().send(to, body);
                Ok(())
            }
            DeferredKind::Command { cmd } => {
                self.check_fault(FaultKind::Command)?;
                self.command_sink.read().run(cmd);
                Ok(())
            }
            DeferredKind::Persist { table, rows } => {
                self.check_fault(FaultKind::Persist)?;
                persist_rows(&self.engine, table, rows.clone())?;
                Ok(())
            }
        }
    }

    /// Attribute a deferred-execution outcome back to the producing rule's
    /// breaker (and its per-rule error counter on failure).
    fn breaker_outcome_by_name(&self, rule: &str, error: bool) {
        let plan = self.plan.load();
        let Some(reg) = plan.rules.iter().find(|r| r.rule.name == rule) else {
            return;
        };
        if error {
            reg.rule.action_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.record_breaker_outcome(reg, false, error, None);
    }

    /// Assemble the containment slice of the telemetry snapshot.
    fn containment_telemetry(&self) -> ContainmentTelemetry {
        let plan = self.plan.load();
        let quarantined: Vec<String> = plan
            .quarantined
            .iter()
            .map(|r| r.rule.name.clone())
            .collect();
        let mut breakers: Vec<BreakerTelemetry> = plan
            .rules
            .iter()
            .filter(|r| r.breaker.state() != BreakerState::Closed || r.breaker.trips() > 0)
            .map(|r| BreakerTelemetry {
                rule: r.rule.name.clone(),
                state: r.breaker.state().as_str(),
                trips: r.breaker.trips(),
                skipped: r.breaker.skipped(),
            })
            .collect();
        breakers.sort_by(|a, b| a.rule.cmp(&b.rule));
        let c = &self.containment;
        let d = &self.deferred;
        ContainmentTelemetry {
            breakers_enabled: c.breakers_enabled(),
            overload_stage: c.stage() as u64,
            overload_transitions: c.transitions.get(),
            shed_traces: c.shed_traces.get(),
            shed_evaluations: c.shed_evaluations.get(),
            breaker_trips: c.breaker_trips.get(),
            breaker_reopens: c.breaker_reopens.get(),
            breaker_closes: c.breaker_closes.get(),
            breaker_skipped: c.breaker_skips.get(),
            quarantined,
            breakers,
            deferred: DeferredTelemetry {
                enabled: self.async_actions.load(Ordering::Relaxed),
                queue_depth: d.depth() as u64,
                capacity: d.capacity() as u64,
                high_water: d.high_water.load(Ordering::Relaxed),
                enqueued: d.enqueued.load(Ordering::Relaxed),
                executed: d.executed.load(Ordering::Relaxed),
                failed_attempts: d.failed_attempts.load(Ordering::Relaxed),
                retries: d.retries.load(Ordering::Relaxed),
                dropped_overflow: d.dropped_overflow.load(Ordering::Relaxed),
                dropped_exhausted: d.dropped_exhausted.load(Ordering::Relaxed),
                deduped: d.deduped.load(Ordering::Relaxed),
            },
            losses: d.losses(),
        }
    }

    /// Fire due timers on the calling thread. Alarms on the reserved
    /// self-monitoring timer become `Monitor.Tick` events instead of
    /// `Timer.Alarm` ones.
    fn poll_timers(&self) {
        // Timer polling doubles as a re-admission heartbeat: quarantined
        // rules get their probation scan even when no events are flowing.
        self.scan_quarantined();
        for alarm in self.timers.due_timers() {
            if alarm.name == SELF_MONITOR_TIMER {
                self.poll_self_monitor();
                continue;
            }
            let obj = objects::timer_object(&alarm.name, alarm.fired_at, alarm.remaining);
            self.dispatch(RuleEvent::TimerAlarm(alarm.name.clone()), vec![obj]);
        }
    }

    /// The self-monitoring bridge: materialize the telemetry snapshot as a
    /// synthetic `Monitor` object and dispatch it as `Monitor.Tick`, so ECA
    /// rules can watch the monitor's own health. Skipped entirely when no
    /// rule subscribes (§2.1 applies to self-observation too).
    fn poll_self_monitor(&self) {
        if !self.has_rules_for(&RuleEvent::MonitorTick) {
            return;
        }
        let health = self.telemetry_snapshot().health();
        self.dispatch(
            RuleEvent::MonitorTick,
            vec![objects::monitor_object(&health)],
        );
    }

    fn stats_now(&self) -> SqlcmStats {
        SqlcmStats {
            events: self.events.load(Ordering::Relaxed),
            evaluations: self.evaluations.load(Ordering::Relaxed),
            fires: self.fires.load(Ordering::Relaxed),
            actions: self.actions.load(Ordering::Relaxed),
            action_errors: self.action_errors.load(Ordering::Relaxed),
        }
    }

    /// Assemble an owned point-in-time view of all telemetry.
    fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        use sqlcm_common::ProbeKind;
        let telem = &self.telemetry;
        let probes = ProbeKind::ALL
            .iter()
            .map(|k| ProbeTelemetry {
                kind: k.name(),
                events: telem.probe_events[k.index()].get(),
                on_event: telem.probe_latency[k.index()].snapshot(),
            })
            .collect();
        let rules = {
            let rule_errors = telem.rule_errors.lock();
            self.rules
                .read()
                .iter()
                .map(|reg| {
                    let stats = reg.rule.stats();
                    RuleTelemetry {
                        name: reg.rule.name.clone(),
                        event: reg.rule.event.to_string(),
                        evaluations: stats.evaluations,
                        fires: stats.fires,
                        actions: stats.actions,
                        action_errors: stats.action_errors,
                        condition: reg.cond_latency.snapshot(),
                        action: reg.action_latency.snapshot(),
                        last_error: rule_errors.get(&reg.rule.name).map(|e| RuleError {
                            rule: reg.rule.name.clone(),
                            count: e.count,
                            message: e.message.clone(),
                        }),
                    }
                })
                .collect()
        };
        let mut lats: Vec<LatTelemetry> = self
            .lats
            .read()
            .values()
            .map(|lat| {
                let stats = lat.stats();
                LatTelemetry {
                    name: lat.spec.name.clone(),
                    inserts: stats.inserts,
                    evictions: stats.evictions,
                    resets: stats.resets,
                    aging_rolls: stats.aging_rolls,
                    rows: lat.row_count() as u64,
                    row_high_water: stats.row_high_water,
                    memory_bytes: lat.memory_bytes() as u64,
                    shards: lat.shard_count() as u64,
                    lock_contentions: lat.lock_contentions(),
                }
            })
            .collect();
        lats.sort_by(|a, b| a.name.cmp(&b.name));
        TelemetrySnapshot {
            stats: self.stats_now(),
            probes,
            rules,
            lats,
            dispatch: DispatchTelemetry {
                plan_epoch: self.plan.load().epoch,
                plan_rebuilds: telem.plan_rebuilds.get(),
                hoisted_lookup_hits: telem.hoisted_lookup_hits.get(),
                lat_row_fetches: telem.lat_row_fetches.get(),
                reg_lock_acquisitions: telem.reg_lock_acquisitions.get(),
                hoist_invalidations_avoided: telem.hoist_invalidations_avoided.get(),
                vm_instructions: telem.vm_instructions.get(),
                cse_hits: telem.cse_hits.get(),
                folded_ops: telem.folded_ops.get(),
            },
            matching: MatchingTelemetry {
                guard_probes: telem.guard_probes.get(),
                rules_pruned: telem.rules_pruned.get(),
                candidate_rules: telem.candidate_rules.get(),
                residual_rules: self.plan.load().guard_residual_rules,
            },
            flight_records: telem.recorder.snapshot(),
            flight_total: telem.recorder.total_recorded(),
            tracing: self.tracer.telemetry(),
            containment: self.containment_telemetry(),
        }
    }
}

impl Sqlcm {
    /// Create an instance and attach it to `engine`'s probe stream.
    pub fn attach(engine: &Engine) -> Sqlcm {
        let handle = engine.handle();
        let clock = handle.clock.clone();
        let outbox = Arc::new(RecordingMailSink::new());
        let command_log = Arc::new(RecordingCommandSink::new());
        let inner = Arc::new(SqlcmInner {
            engine: handle,
            clock: clock.clone(),
            lats: RwLock::new(HashMap::new()),
            rules: RwLock::new(Vec::new()),
            plan: PlanCell::new(Arc::new(DispatchPlan::build(
                0,
                &[],
                &HashMap::new(),
                false,
                true,
                true,
            ))),
            plan_rebuild: Mutex::new(()),
            plan_epoch: AtomicU64::new(0),
            timers: TimerRegistry::new(clock),
            mail_sink: RwLock::new(outbox.clone() as Arc<dyn MailSink>),
            command_sink: RwLock::new(command_log.clone() as Arc<dyn CommandSink>),
            outbox,
            command_log,
            events: AtomicU64::new(0),
            evaluations: AtomicU64::new(0),
            fires: AtomicU64::new(0),
            actions: AtomicU64::new(0),
            action_errors: AtomicU64::new(0),
            last_error: Mutex::new(None),
            analysis_warnings: Mutex::new(Vec::new()),
            coarse_invalidation: AtomicBool::new(false),
            cse_enabled: AtomicBool::new(true),
            guard_index_enabled: AtomicBool::new(true),
            telemetry: Telem::new(),
            tracer: Tracer::new(),
            containment: Containment::new(),
            deferred: DeferredQueue::new(),
            async_actions: AtomicBool::new(false),
            faults_on: AtomicBool::new(false),
            faults: RwLock::new(None),
            shutdown: AtomicBool::new(false),
        });
        engine.attach_monitor(Arc::new(SqlcmMonitor {
            inner: inner.clone(),
        }));
        Sqlcm {
            inner,
            timer_thread: Mutex::new(None),
            executor_thread: Mutex::new(None),
        }
    }

    /// Detach from the engine (no more events are delivered). LATs and rules
    /// stay readable.
    pub fn detach(&self, engine: &Engine) -> bool {
        engine.detach_monitor("sqlcm")
    }

    /// Re-attach this instance after a [`Sqlcm::detach`], keeping its LATs,
    /// rules, timers, and statistics.
    pub fn reattach(&self, engine: &Engine) {
        engine.attach_monitor(Arc::new(SqlcmMonitor {
            inner: self.inner.clone(),
        }));
    }

    // ------------------------------------------------------------ LATs

    /// Define a light-weight aggregation table. The spec is validated
    /// structurally and then checked by the static analyzer (unknown class or
    /// attribute sources are denied with an `E001` diagnostic).
    pub fn define_lat(&self, spec: LatSpec) -> Result<Arc<Lat>> {
        spec.validate()?;
        let diags = self.analyzer().check_lat(&analysis::lat_ir(&spec));
        self.deny_on_errors(diags)?;
        let key = spec.name.to_ascii_lowercase();
        let lat = {
            let mut lats = self.inner.lats_write();
            if lats.contains_key(&key) {
                return Err(Error::Monitor(format!("LAT {} already exists", spec.name)));
            }
            let lat = Arc::new(Lat::new(spec, self.inner.clock.clone())?);
            lats.insert(key, lat.clone());
            lat
        };
        // A dropped-and-redefined LAT un-breaks rules conditioned on it;
        // republish so the new plan binds the fresh handle.
        self.inner.rebuild_plan();
        Ok(lat)
    }

    /// A fresh analyzer seeded with the currently registered LATs and rules.
    /// Rebuilt per registration: rule counts are small and this keeps the
    /// analyzer state trivially consistent with `drop_lat`/`remove_rule`.
    fn analyzer(&self) -> Analyzer {
        let mut analyzer = Analyzer::new();
        for lat in self.inner.lats_read().values() {
            let diags = analyzer.check_lat(&analysis::lat_ir(&lat.spec));
            debug_assert!(
                diags.is_empty(),
                "registered LAT re-checks clean: {diags:?}"
            );
        }
        for reg in self.inner.rules_read().iter() {
            analyzer.seed_rule(analysis::rule_ir(&reg.rule));
        }
        analyzer
    }

    /// Split analyzer output: error diagnostics deny the registration (joined
    /// into one `Error::Monitor` whose message carries the stable codes);
    /// warnings are appended to [`Sqlcm::analysis_warnings`].
    fn deny_on_errors(&self, diags: Vec<Diagnostic>) -> Result<()> {
        let (errors, warnings): (Vec<_>, Vec<_>) =
            diags.into_iter().partition(Diagnostic::is_error);
        self.record_warnings(warnings);
        if errors.is_empty() {
            return Ok(());
        }
        let msg = errors
            .iter()
            .map(Diagnostic::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        Err(Error::Monitor(msg))
    }

    /// Append analyzer warnings to the log, skipping (code, rule, message)
    /// repeats — re-registration loops would otherwise fill the log with
    /// copies — and dropping the oldest entries past the cap so the log's
    /// memory stays bounded over the instance's lifetime.
    fn record_warnings(&self, warnings: Vec<Diagnostic>) {
        if warnings.is_empty() {
            return;
        }
        let mut log = self.inner.analysis_warnings.lock();
        for w in warnings {
            if log
                .iter()
                .any(|e| e.code == w.code && e.rule == w.rule && e.message == w.message)
            {
                continue;
            }
            if log.len() >= MAX_ANALYSIS_WARNINGS {
                log.remove(0);
            }
            log.push(w);
        }
    }

    /// Warnings the static analyzer has collected across registrations.
    pub fn analysis_warnings(&self) -> Vec<Diagnostic> {
        self.inner.analysis_warnings.lock().clone()
    }

    /// Drop every collected analyzer warning (an operator "mark as read").
    pub fn clear_analysis_warnings(&self) {
        self.inner.analysis_warnings.lock().clear();
    }

    /// Force coarse (always-clear) hoist-slot invalidation, ignoring the
    /// analyzer's effect summaries, and republish the plan. The default
    /// (`false`) keeps a hoisted row snapshot live across a fired rule whose
    /// writes are provably disjoint from every reader of the slot. The
    /// coarse mode exists for differential testing and as an operational
    /// rollback: both modes must produce identical firings and LAT contents,
    /// differing only in `lat_row_fetches`.
    pub fn set_coarse_invalidation(&self, coarse: bool) {
        self.inner
            .coarse_invalidation
            .store(coarse, Ordering::Relaxed);
        self.inner.rebuild_plan();
    }

    /// Toggle cross-rule subexpression sharing (CSE slots in the dispatch
    /// plan) and republish. On by default: equal condition subtrees appearing
    /// under two or more rules on the same event evaluate once per event and
    /// later sharers reuse the value. Off exists for differential testing and
    /// as an operational rollback: both modes must produce identical firings,
    /// differing only in `cse_hits` and per-condition work.
    pub fn set_cse_enabled(&self, enabled: bool) {
        self.inner.cse_enabled.store(enabled, Ordering::Relaxed);
        self.inner.rebuild_plan();
    }

    /// Toggle guard-indexed rule matching and republish. On by default: one
    /// index probe per event yields the candidate rule set and provably
    /// non-matching rules skip the condition VM, so dispatch cost scales
    /// with *matching* rules rather than registered rules. Off exists for
    /// differential testing and as an operational rollback: both modes must
    /// produce identical firings, statistics, and LAT contents, differing
    /// only in the `matching` telemetry slice and per-event work.
    pub fn set_guard_index_enabled(&self, enabled: bool) {
        self.inner
            .guard_index_enabled
            .store(enabled, Ordering::Relaxed);
        self.inner.rebuild_plan();
    }

    /// Run the static analyzer on a rule against the current LATs and rules
    /// without registering anything — a lint probe.
    pub fn analyze_rule(&self, rule: &Rule) -> Vec<Diagnostic> {
        self.analyzer().check_rule(&analysis::rule_ir(rule))
    }

    pub fn drop_lat(&self, name: &str) -> bool {
        let removed = self
            .inner
            .lats_write()
            .remove(&name.to_ascii_lowercase())
            .is_some();
        if removed {
            // Rules conditioned on the dropped LAT become `broken` in the new
            // plan (they error per evaluation, as the old per-event resolution
            // did); Insert targets keep their resolved handle.
            self.inner.rebuild_plan();
        }
        removed
    }

    pub fn lat(&self, name: &str) -> Option<Arc<Lat>> {
        self.inner
            .lats
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    pub fn lat_names(&self) -> Vec<String> {
        self.inner
            .lats
            .read()
            .values()
            .map(|l| l.spec.name.clone())
            .collect()
    }

    /// Total approximate memory of all LATs (the knob of §4.3's "managing LAT
    /// memory overhead").
    pub fn lat_memory_bytes(&self) -> usize {
        self.inner
            .lats
            .read()
            .values()
            .map(|l| l.memory_bytes())
            .sum()
    }

    /// Persist a LAT to a table immediately (outside any rule).
    pub fn persist_lat(&self, lat: &str, table: &str) -> Result<u64> {
        let lat = self.inner.lat(lat)?;
        let now = self.inner.clock.now_micros();
        let rows: Vec<Vec<Value>> = lat
            .rows_ordered()
            .into_iter()
            .map(|mut r| {
                r.push(Value::Timestamp(now));
                r
            })
            .collect();
        persist_rows(&self.inner.engine, table, rows)
    }

    /// Re-seed a LAT from a previously persisted table (the §4.3 "maintain LAT
    /// data over multiple restarts" path). `count_column` names the LAT's COUNT
    /// column to use as the seed weight for AVG/STDEV, when present.
    pub fn restore_lat(&self, lat: &str, table: &str, count_column: Option<&str>) -> Result<u64> {
        let lat = self.inner.lat(lat)?;
        let cols = lat.columns();
        let count_idx = count_column.and_then(|c| lat.column_index(c));
        let rows = read_table(&self.inner.engine, table)?;
        let mut n = 0;
        for mut row in rows {
            // Accept the persisted layout (columns + timestamp) or bare columns.
            if row.len() == cols.len() + 1 {
                row.pop();
            }
            let weight = count_idx
                .and_then(|i| row.get(i))
                .and_then(|v| v.as_i64())
                .unwrap_or(1);
            lat.seed_row(&row, weight)?;
            n += 1;
        }
        Ok(n)
    }

    // ------------------------------------------------------------ rules

    /// Register a rule. The static analyzer checks it first — unknown
    /// references (E001), condition type errors (E002), unjoinable LAT
    /// probes (E003) and cascade cycles (E004) deny registration with a
    /// coded diagnostic; warnings (W101/W102/W201) are collected and
    /// readable via [`Sqlcm::analysis_warnings`]. What the analyzer admits
    /// is then compiled against the live LATs.
    pub fn add_rule(&self, rule: Rule) -> Result<Arc<Rule>> {
        if self
            .inner
            .rules_read()
            .iter()
            .any(|r| r.rule.name == rule.name)
        {
            return Err(Error::Monitor(format!("rule {} already exists", rule.name)));
        }
        let mut analyzer = self.analyzer();
        let ir = analysis::rule_ir(&rule);
        let diags = analyzer.check_rule(&ir);
        self.deny_on_errors(diags)?;
        // Captured for the dispatch plan: the rule's column-level read/write
        // sets drive precise hoist-slot invalidation.
        let effects = Arc::new(analyzer.effects_of(&ir));
        let (cond_classes, cond_lats) = rule.condition_refs()?;
        let cond_lats_lc: Vec<String> = cond_lats.iter().map(|l| l.to_ascii_lowercase()).collect();
        let compiled = {
            let lats = self.inner.lats_read();
            for l in &cond_lats {
                if !lats.contains_key(&l.to_ascii_lowercase()) {
                    return Err(Error::Monitor(format!(
                        "rule {} references unknown LAT {l}",
                        rule.name
                    )));
                }
            }
            for a in &rule.actions {
                if let Some(l) = a.lat_refs() {
                    if !lats.contains_key(&l.to_ascii_lowercase()) {
                        return Err(Error::Monitor(format!(
                            "rule {} targets unknown LAT {l}",
                            rule.name
                        )));
                    }
                }
            }
            // Lower once into the shared expression IR, fold constants, then
            // resolve references against the live LATs. The fold delta feeds
            // the `folded_ops` telemetry counter.
            let compiled_cond = rule
                .condition
                .as_ref()
                .map(|c| {
                    let lowered = sqlcm_sql::ExprIr::lower(c);
                    let folded = lowered.fold();
                    self.inner
                        .telemetry
                        .folded_ops
                        .add(folded.folded_ops as u64);
                    crate::ir::CondIr::from_ir(&folded, &lats, &cond_lats_lc).map(Arc::new)
                })
                .transpose()?;
            let compiled_actions = rule
                .actions
                .iter()
                .map(|a| {
                    Ok(match a {
                        Action::Insert { lat } => {
                            let lat_arc = lats
                                .get(&lat.to_ascii_lowercase())
                                .expect("validated")
                                .clone();
                            let eviction_event = RuleEvent::LatEviction(lat_arc.spec.name.clone());
                            CompiledAction::Insert {
                                lat: lat_arc,
                                eviction_event,
                            }
                        }
                        Action::Reset { lat } => CompiledAction::Reset(
                            lats.get(&lat.to_ascii_lowercase())
                                .expect("validated")
                                .clone(),
                        ),
                        Action::PersistLat { table, lat } => CompiledAction::PersistLat {
                            table: table.clone(),
                            lat: lats
                                .get(&lat.to_ascii_lowercase())
                                .expect("validated")
                                .clone(),
                        },
                        other => CompiledAction::Other(other.clone()),
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            (compiled_cond, compiled_actions)
        };
        let (compiled, compiled_actions) = compiled;
        let mut rules = self.inner.rules_write();
        if rules.iter().any(|r| r.rule.name == rule.name) {
            return Err(Error::Monitor(format!("rule {} already exists", rule.name)));
        }
        let rule = Arc::new(rule);
        rules.push(Arc::new(Registered {
            rule: rule.clone(),
            compiled,
            actions: compiled_actions,
            cond_classes,
            cond_lats: cond_lats_lc,
            cond_latency: LatencyHistogram::new(),
            action_latency: LatencyHistogram::new(),
            effects: Some(effects),
            breaker: RuleBreaker::new(self.inner.containment.default_breaker_config()),
        }));
        drop(rules);
        // Publish a plan containing the new rule, then fold its subscription
        // into the engine's probe-interest mask (`wants` reads the plan, so
        // the rebuild must come first or its events never reach us).
        self.inner.rebuild_plan();
        self.inner.engine.monitors.refresh_interest();
        Ok(rule)
    }

    /// Remove a rule; true when it existed.
    pub fn remove_rule(&self, name: &str) -> bool {
        let removed = {
            let mut rules = self.inner.rules_write();
            let before = rules.len();
            rules.retain(|r| r.rule.name != name);
            rules.len() != before
        };
        if removed {
            // Publish the shrunken plan, then shrink the engine's
            // probe-interest mask (`wants` reads the plan).
            self.inner.rebuild_plan();
            self.inner.engine.monitors.refresh_interest();
        }
        removed
    }

    /// Enable or disable a rule by name and republish the dispatch plan
    /// (epoch bump). Returns whether the rule exists.
    ///
    /// Toggling through the [`Rule`] handle directly also works — the plan's
    /// interest mask conservatively includes disabled rules, and dispatch
    /// re-snapshots enabled-ness per event — but does not bump the epoch.
    pub fn set_rule_enabled(&self, name: &str, on: bool) -> bool {
        let found = match self.inner.rules_read().iter().find(|r| r.rule.name == name) {
            Some(r) => {
                r.rule.set_enabled(on);
                true
            }
            None => false,
        };
        if found {
            self.inner.rebuild_plan();
            self.inner.engine.monitors.refresh_interest();
        }
        found
    }

    /// Dispatch an engine event through the monitor exactly as a probe would —
    /// the stress/bench entry point exercising the real hot path (probe
    /// counters, plan load, interest mask, payload pooling).
    pub fn inject_event(&self, event: &EngineEvent) {
        SqlcmMonitor {
            inner: self.inner.clone(),
        }
        .on_event(event);
    }

    /// A summary of the currently published dispatch plan: epoch, rule count,
    /// and per-event hoist groups (which rules share which LAT lookup).
    pub fn plan_summary(&self) -> PlanSummary {
        self.inner.plan.load().summary()
    }

    pub fn rule(&self, name: &str) -> Option<Arc<Rule>> {
        self.inner
            .rules
            .read()
            .iter()
            .find(|r| r.rule.name == name)
            .map(|r| r.rule.clone())
    }

    pub fn rule_count(&self) -> usize {
        self.inner.rules.read().len()
    }

    // ------------------------------------------------------------ timers

    /// Arm a timer directly (equivalent to the `Set` action).
    pub fn set_timer(&self, name: &str, period_micros: u64, number_alarms: i64) {
        self.inner.timers.set(name, period_micros, number_alarms);
    }

    /// Fire due timers on the calling thread (deterministic testing with a
    /// manual clock; the background thread calls this too).
    pub fn poll_timers(&self) {
        self.inner.poll_timers();
    }

    /// Start the background timer thread, polling at `interval`.
    pub fn start_timer_thread(&self, interval: std::time::Duration) {
        let mut guard = self.timer_thread.lock();
        if guard.is_some() {
            return;
        }
        let weak: Weak<SqlcmInner> = Arc::downgrade(&self.inner);
        *guard = Some(std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            match weak.upgrade() {
                Some(inner) => {
                    if inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    inner.poll_timers();
                }
                None => break,
            }
        }));
    }

    // ------------------------------------------------------------ containment

    /// Enable/disable per-rule circuit breakers (default on). Disabling
    /// force-closes every breaker and republishes the plan, so a quarantined
    /// rule returns to service immediately.
    pub fn set_breakers_enabled(&self, on: bool) {
        self.inner.containment.set_breakers_enabled(on);
        if !on {
            for reg in self.inner.rules.read().iter() {
                reg.breaker.force_close();
            }
            self.inner.rebuild_plan();
        }
    }

    pub fn breakers_enabled(&self) -> bool {
        self.inner.containment.breakers_enabled()
    }

    /// Set the default breaker config *and* apply it to every registered
    /// rule's breaker (state and windows are preserved; only thresholds move).
    pub fn set_breaker_config(&self, cfg: BreakerConfig) {
        self.inner.containment.set_default_breaker_config(cfg);
        for reg in self.inner.rules.read().iter() {
            reg.breaker.set_config(cfg);
        }
    }

    pub fn breaker_config(&self) -> BreakerConfig {
        self.inner.containment.default_breaker_config()
    }

    /// Override one rule's breaker config. Returns whether the rule exists.
    pub fn set_rule_breaker_config(&self, rule: &str, cfg: BreakerConfig) -> bool {
        match self.inner.rules.read().iter().find(|r| r.rule.name == rule) {
            Some(r) => {
                r.breaker.set_config(cfg);
                true
            }
            None => false,
        }
    }

    /// Current breaker state of a rule (`None` for unknown rules).
    pub fn breaker_state(&self, rule: &str) -> Option<BreakerState> {
        self.inner
            .rules
            .read()
            .iter()
            .find(|r| r.rule.name == rule)
            .map(|r| r.breaker.state())
    }

    /// Scan quarantined rules for cooldown-expired half-open re-admission
    /// now (the event-path checkpoint and timer polling do this too).
    /// Returns how many breakers re-opened into probation.
    pub fn poll_breakers(&self) -> u32 {
        self.inner.scan_quarantined()
    }

    /// Route external actions (`SendMail`, `RunExternal`, `Persist*`) through
    /// the bounded deferred queue instead of executing them in the raising
    /// thread. `Insert`/`Reset`/`Set`/`Cancel` stay synchronous — their
    /// effects feed rule state the very next event may read (§5).
    pub fn set_async_actions(&self, on: bool) {
        self.inner.async_actions.store(on, Ordering::Relaxed);
    }

    pub fn async_actions(&self) -> bool {
        self.inner.async_actions.load(Ordering::Relaxed)
    }

    /// Drain due deferred actions on the calling thread; returns successful
    /// executions. Deterministic twin of [`Sqlcm::start_action_executor`].
    pub fn pump_deferred_actions(&self) -> u32 {
        self.inner.pump_deferred()
    }

    /// Start the background executor thread draining the deferred queue at
    /// `interval`.
    pub fn start_action_executor(&self, interval: std::time::Duration) {
        let mut guard = self.executor_thread.lock();
        if guard.is_some() {
            return;
        }
        let weak: Weak<SqlcmInner> = Arc::downgrade(&self.inner);
        *guard = Some(std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            match weak.upgrade() {
                Some(inner) => {
                    if inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    inner.pump_deferred();
                }
                None => break,
            }
        }));
    }

    pub fn deferred_queue_depth(&self) -> usize {
        self.inner.deferred.depth()
    }

    /// Resize the deferred-action queue (clamped to ≥ 1). Shrinking below the
    /// current depth sheds the oldest entries into the loss ledger on the
    /// next enqueue.
    pub fn set_deferred_queue_capacity(&self, capacity: usize) {
        self.inner.deferred.set_capacity(capacity);
    }

    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.inner.deferred.set_policy(policy);
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        self.inner.deferred.policy()
    }

    /// The loss ledger: every dropped deferred action by (rule, reason).
    pub fn loss_ledger(&self) -> Vec<LossEntry> {
        self.inner.deferred.losses()
    }

    /// Total deferred actions lost (overflow + exhausted retries) — the
    /// conservation identity is `enqueued == executed + lost + depth`.
    pub fn total_action_losses(&self) -> u64 {
        self.inner.deferred.total_losses()
    }

    /// One rule's current breaker thresholds (`None` for unknown rules).
    pub fn rule_breaker_config(&self, rule: &str) -> Option<BreakerConfig> {
        self.inner
            .rules
            .read()
            .iter()
            .find(|r| r.rule.name == rule)
            .map(|r| r.breaker.config())
    }

    /// Faults injected so far for one sink kind (0 when no plan installed).
    pub fn injected_faults(&self, kind: FaultKind) -> u64 {
        self.inner
            .faults
            .read()
            .as_ref()
            .map(|f| f.injected(kind))
            .unwrap_or(0)
    }

    /// Sink attempts observed by the fault layer for one kind (0 when no
    /// plan installed).
    pub fn faultable_attempts(&self, kind: FaultKind) -> u64 {
        self.inner
            .faults
            .read()
            .as_ref()
            .map(|f| f.attempts(kind))
            .unwrap_or(0)
    }

    /// Install (or with `None`, remove) a seeded fault-injection plan. Test
    /// control surface: the hot path pays one relaxed load when no plan is
    /// installed.
    pub fn inject_faults(&self, plan: Option<FaultPlan>) {
        match plan {
            Some(p) => {
                *self.inner.faults.write() = Some(Arc::new(FaultState::new(p)));
                self.inner.faults_on.store(true, Ordering::Relaxed);
            }
            None => {
                self.inner.faults_on.store(false, Ordering::Relaxed);
                *self.inner.faults.write() = None;
            }
        }
    }

    /// Install (or with `None`, remove) the overload-ladder policy. With no
    /// policy the ladder never leaves [`OverloadStage::Full`].
    pub fn set_overload_policy(&self, policy: Option<OverloadPolicy>) {
        match policy {
            Some(p) => self.inner.containment.set_policy(
                p,
                self.inner.clock.now_micros(),
                self.inner.events.load(Ordering::Relaxed),
            ),
            None => self.inner.containment.clear_policy(),
        }
    }

    pub fn overload_stage(&self) -> OverloadStage {
        OverloadStage::from_u8(self.inner.containment.stage())
    }

    /// The installed ladder policy, if any.
    pub fn overload_policy(&self) -> Option<OverloadPolicy> {
        self.inner
            .containment
            .policy_enabled()
            .then(|| self.inner.containment.policy())
    }

    // ------------------------------------------------------------ sinks & stats

    /// The default recording outbox for `SendMail`.
    pub fn outbox(&self) -> Arc<RecordingMailSink> {
        self.inner.outbox.clone()
    }

    /// The default recording log for `RunExternal`.
    pub fn command_log(&self) -> Arc<RecordingCommandSink> {
        self.inner.command_log.clone()
    }

    pub fn set_mail_sink(&self, sink: Arc<dyn MailSink>) {
        *self.inner.mail_sink.write() = sink;
    }

    pub fn set_command_sink(&self, sink: Arc<dyn CommandSink>) {
        *self.inner.command_sink.write() = sink;
    }

    pub fn stats(&self) -> SqlcmStats {
        self.inner.stats_now()
    }

    /// Last swallowed action/condition error, for diagnostics.
    pub fn last_error(&self) -> Option<String> {
        self.inner.last_error.lock().clone()
    }

    // ------------------------------------------------------------ telemetry

    /// Point-in-time snapshot of everything the monitor knows about itself:
    /// per-probe counts and `on_event` latency, per-rule evaluation/fire/action
    /// counts with condition and action latency, per-LAT occupancy and churn,
    /// and the flight recorder of recent firings.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.inner.telemetry_snapshot()
    }

    /// Toggle latency histograms and the flight recorder (per-probe and global
    /// *counters* stay on; only state requiring clock reads is gated).
    pub fn set_telemetry_enabled(&self, on: bool) {
        self.inner.telemetry.set_enabled(on);
    }

    pub fn telemetry_enabled(&self) -> bool {
        self.inner.telemetry.enabled()
    }

    /// Per-rule last errors (bounded map; sorted by rule name).
    pub fn rule_errors(&self) -> Vec<RuleError> {
        self.inner.telemetry.rule_errors_snapshot()
    }

    /// Resize the flight recorder in place (clamped to at least 1; the
    /// default is [`crate::telemetry::FLIGHT_RECORDER_CAPACITY`]). Shrinking
    /// evicts the oldest records immediately.
    pub fn set_flight_recorder_capacity(&self, capacity: usize) {
        self.inner.telemetry.recorder.set_capacity(capacity);
    }

    pub fn flight_recorder_capacity(&self) -> usize {
        self.inner.telemetry.recorder.capacity()
    }

    // ------------------------------------------------------------ tracing

    /// Set the causal-trace sampling policy (default [`TraceSampling::Off`]).
    /// A sampled root event records a full span tree — LAT lookups, per-rule
    /// condition decisions with explainers, actions, LAT mutations, and every
    /// cascaded event linked to the span that caused it — into a bounded ring
    /// readable via [`Sqlcm::traces`]. With sampling off, the only per-event
    /// cost is one relaxed atomic load.
    pub fn set_trace_sampling(&self, sampling: TraceSampling) {
        self.inner.tracer.set_sampling(sampling);
    }

    pub fn trace_sampling(&self) -> TraceSampling {
        self.inner.tracer.sampling()
    }

    /// Completed traces, oldest first (bounded ring, drop-oldest; see
    /// [`crate::trace::TRACE_RING_CAPACITY`]). Each snapshot renders as an
    /// indented provenance tree ([`TraceSnapshot::to_text_tree`]) or exports
    /// as Chrome trace-event JSON ([`crate::trace::chrome_trace_json`]).
    pub fn traces(&self) -> Vec<TraceSnapshot> {
        self.inner.tracer.snapshot()
    }

    /// Drop all retained traces (their span buffers are recycled).
    pub fn clear_traces(&self) {
        self.inner.tracer.clear();
    }

    /// The static analyzer's bound on cascade depth for the currently
    /// registered rules: the longest raised-event → subscribed-rule chain.
    /// Observed trace depths ([`TraceSnapshot::max_cascade_depth`]) can never
    /// exceed this (E004 denies cyclic rule sets at registration).
    pub fn cascade_depth_bound(&self) -> usize {
        self.analyzer().max_cascade_depth()
    }

    /// Run one self-monitoring tick synchronously: if any rule subscribes to
    /// [`RuleEvent::MonitorTick`], a synthetic `Monitor` object carrying the
    /// current [`TelemetrySnapshot::health`] is dispatched through the normal
    /// rule pipeline.
    pub fn poll_self_monitor(&self) {
        self.inner.poll_self_monitor();
    }

    /// Arm the reserved self-monitoring timer: every `period_micros`, timer
    /// polling emits a `Monitor.Tick` (see [`Sqlcm::poll_self_monitor`])
    /// instead of a `Timer.Alarm`. Pair with [`Sqlcm::start_timer_thread`]
    /// for wall-clock driving, or [`Sqlcm::poll_timers`] under a manual clock.
    pub fn enable_self_monitoring(&self, period_micros: u64) {
        self.set_timer(SELF_MONITOR_TIMER, period_micros, -1);
    }

    /// Disarm the reserved self-monitoring timer.
    pub fn disable_self_monitoring(&self) {
        self.set_timer(SELF_MONITOR_TIMER, 1, 0);
    }

    /// Convenience used by examples/benches: quick top-k LAT over query
    /// durations grouped by signature (the paper's Example 3 shape).
    pub fn define_topk_duration_lat(&self, name: &str, k: usize) -> Result<Arc<Lat>> {
        self.define_lat(
            LatSpec::new(name)
                .group_by("Query.Logical_Signature", "Sig")
                .aggregate(LatAggFunc::Max, "Query.Duration", "Duration")
                .aggregate(LatAggFunc::Last, "Query.Query_Text", "Query_Text")
                .order_by("Duration", true)
                .max_rows(k),
        )
    }
}

impl Drop for Sqlcm {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // The threads hold only a Weak; they exit on their next poll.
        if let Some(h) = self.timer_thread.lock().take() {
            let _ = h;
        }
        if let Some(h) = self.executor_thread.lock().take() {
            let _ = h;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcm_engine::engine::{EngineConfig, HistoryMode};

    fn setup() -> (Engine, Sqlcm) {
        let engine = Engine::new(EngineConfig {
            history: HistoryMode::Disabled,
            ..Default::default()
        })
        .unwrap();
        engine
            .execute_batch("CREATE TABLE t (id INT PRIMARY KEY, v INT);")
            .unwrap();
        let sqlcm = Sqlcm::attach(&engine);
        (engine, sqlcm)
    }

    fn seed(engine: &Engine, n: i64) {
        let mut s = engine.connect("seed", "seed");
        for i in 0..n {
            s.execute_params(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i), Value::Int(i * 10)],
            )
            .unwrap();
        }
    }

    #[test]
    fn insert_rule_populates_lat() {
        let (engine, sqlcm) = setup();
        sqlcm
            .define_lat(
                LatSpec::new("ByType")
                    .group_by("Query.Query_Type", "QType")
                    .aggregate(LatAggFunc::Count, "", "N"),
            )
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("track")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::insert("ByType")),
            )
            .unwrap();
        seed(&engine, 5);
        engine.query("SELECT * FROM t").unwrap();
        let lat = sqlcm.lat("ByType").unwrap();
        let rows = lat.rows();
        let get = |ty: &str| {
            rows.iter()
                .find(|r| r[0] == Value::text(ty))
                .map(|r| r[1].clone())
        };
        assert_eq!(get("INSERT"), Some(Value::Int(5)));
        assert_eq!(get("SELECT"), Some(Value::Int(1)));
        assert!(sqlcm.stats().fires >= 6);
    }

    #[test]
    fn example1_outlier_detection() {
        let (engine, sqlcm) = setup();
        engine
            .execute_batch("CREATE TABLE outliers (qtext TEXT, duration FLOAT);")
            .unwrap();
        sqlcm
            .define_lat(
                LatSpec::new("Duration_LAT")
                    .group_by("Query.Logical_Signature", "Sig")
                    .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration")
                    .order_by("Avg_Duration", true)
                    .max_rows(100),
            )
            .unwrap();
        // The paper's Example-1 rule, verbatim structure.
        sqlcm
            .add_rule(
                Rule::new("report_outliers")
                    .on(RuleEvent::QueryCommit)
                    // The 1-second floor keeps scheduler noise on µs-scale
                    // test queries from counting as outliers.
                    .when("Query.Duration > 5 * Duration_LAT.Avg_Duration AND Query.Duration > 1")
                    .then(Action::persist_object(
                        "outliers",
                        "Query",
                        &["Query_Text", "Duration"],
                    )),
            )
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("track_durations")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::insert("Duration_LAT")),
            )
            .unwrap();
        seed(&engine, 3);
        // Build an average from several fast point selects (same template).
        for i in 0..10 {
            engine
                .query(&format!("SELECT v FROM t WHERE id = {i}"))
                .unwrap();
        }
        assert_eq!(
            engine.query("SELECT COUNT(*) FROM outliers").unwrap()[0][0],
            Value::Int(0),
            "uniform durations: no outliers"
        );
        // A wildly slower instance of the same template: simulate by inserting
        // a fabricated commit event directly (duration cannot be forced through
        // the real engine deterministically).
        let lat = sqlcm.lat("Duration_LAT").unwrap();
        let sig_row = lat.rows();
        assert!(!sig_row.is_empty());
        let mut q = sqlcm_common::QueryInfo::synthetic(999, "SELECT v FROM t WHERE id = 0");
        q.logical_signature = Some(sig_row[0][0].as_i64().unwrap() as u64);
        q.duration_micros = 60_000_000; // 60 s ≫ 5×avg
        let monitor = SqlcmMonitor {
            inner: Sqlcm::attach(&engine).inner.clone(),
        };
        let _ = monitor; // silence: we use the original instance's dispatch
                         // Dispatch through the attached instance by emitting a real event:
        sqlcm
            .inner
            .dispatch(RuleEvent::QueryCommit, vec![objects::query_object(&q)]);
        assert_eq!(
            engine.query("SELECT COUNT(*) FROM outliers").unwrap()[0][0],
            Value::Int(1),
            "outlier persisted"
        );
    }

    #[test]
    fn example3_topk_and_persist() {
        let (engine, sqlcm) = setup();
        engine
            .execute_batch("CREATE TABLE topk (sig INT, duration FLOAT, qtext TEXT, at TIMESTAMP);")
            .unwrap();
        sqlcm.define_topk_duration_lat("Top3", 3).unwrap();
        sqlcm
            .add_rule(
                Rule::new("track")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::insert("Top3")),
            )
            .unwrap();
        // Synthetic commits with controlled durations and distinct signatures.
        for (sig, secs) in [(1u64, 1.0), (2, 9.0), (3, 3.0), (4, 7.0), (5, 5.0)] {
            let mut q = sqlcm_common::QueryInfo::synthetic(sig, format!("q{sig}"));
            q.logical_signature = Some(sig);
            q.duration_micros = (secs * 1e6) as u64;
            sqlcm
                .inner
                .dispatch(RuleEvent::QueryCommit, vec![objects::query_object(&q)]);
        }
        let lat = sqlcm.lat("Top3").unwrap();
        let kept: Vec<f64> = lat
            .rows_ordered()
            .iter()
            .map(|r| r[1].as_f64().unwrap())
            .collect();
        assert_eq!(kept, vec![9.0, 7.0, 5.0]);
        let n = sqlcm.persist_lat("Top3", "topk").unwrap();
        assert_eq!(n, 3);
        let rows = engine
            .query("SELECT sig FROM topk ORDER BY duration DESC")
            .unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn eviction_event_feeds_rules() {
        let (engine, sqlcm) = setup();
        engine
            .execute_batch("CREATE TABLE evicted (sig INT, d FLOAT);")
            .unwrap();
        sqlcm
            .define_lat(
                LatSpec::new("Small")
                    .group_by("Query.Logical_Signature", "Sig")
                    .aggregate(LatAggFunc::Max, "Query.Duration", "D")
                    .order_by("D", true)
                    .max_rows(1),
            )
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("track")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::insert("Small")),
            )
            .unwrap();
        // Rule on the eviction event persists evicted rows (§4.3).
        sqlcm
            .add_rule(
                Rule::new("keep_evicted")
                    .on(RuleEvent::LatEviction("Small".into()))
                    .then(Action::PersistObject {
                        table: "evicted".into(),
                        class: ClassName::Evicted("Small".into()),
                        attrs: vec!["Sig".into(), "D".into()],
                    }),
            )
            .unwrap();
        for (sig, secs) in [(1u64, 5.0), (2, 9.0)] {
            let mut q = sqlcm_common::QueryInfo::synthetic(sig, "q");
            q.logical_signature = Some(sig);
            q.duration_micros = (secs * 1e6) as u64;
            sqlcm
                .inner
                .dispatch(RuleEvent::QueryCommit, vec![objects::query_object(&q)]);
        }
        let rows = engine.query("SELECT sig, d FROM evicted").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1), Value::Float(5.0)]]);
    }

    #[test]
    fn timer_rule_with_manual_clock() {
        use sqlcm_common::ManualClock;
        let (clock, handle) = ManualClock::shared(0);
        let engine = Engine::new(EngineConfig {
            clock: Some(clock),
            ..Default::default()
        })
        .unwrap();
        engine
            .execute_batch("CREATE TABLE beats (name TEXT, at TIMESTAMP);")
            .unwrap();
        let sqlcm = Sqlcm::attach(&engine);
        sqlcm
            .add_rule(
                Rule::new("heartbeat")
                    .on(RuleEvent::TimerAlarm("hb".into()))
                    .then(Action::PersistObject {
                        table: "beats".into(),
                        class: ClassName::Timer,
                        attrs: vec!["Name".into(), "Time".into()],
                    }),
            )
            .unwrap();
        sqlcm.set_timer("hb", 1_000_000, 3);
        for _ in 0..5 {
            handle.advance(1_000_000);
            sqlcm.poll_timers();
        }
        assert_eq!(
            engine.query("SELECT COUNT(*) FROM beats").unwrap()[0][0],
            Value::Int(3),
            "timer fired exactly number_alarms times"
        );
    }

    #[test]
    fn send_mail_and_run_external() {
        let (engine, sqlcm) = setup();
        sqlcm
            .add_rule(
                Rule::new("alert")
                    .on(RuleEvent::QueryCommit)
                    .when("Query.Duration >= 0")
                    .then(Action::send_mail(
                        "dba@example.org",
                        "query {Query.ID} by {Query.User}",
                    ))
                    .then(Action::run_external("log.sh {Query.ID}")),
            )
            .unwrap();
        seed(&engine, 1);
        assert_eq!(sqlcm.outbox().len(), 1);
        let (to, body) = sqlcm.outbox().messages().pop().unwrap();
        assert_eq!(to, "dba@example.org");
        assert!(body.contains("by seed"), "{body}");
        assert_eq!(sqlcm.command_log().len(), 1);
    }

    #[test]
    fn rule_registration_validation() {
        let (_engine, sqlcm) = setup();
        // Unknown LAT in condition.
        assert!(sqlcm
            .add_rule(Rule::new("r").when("Nope_LAT.x > 1"))
            .is_err());
        // Unknown LAT in action.
        assert!(sqlcm
            .add_rule(Rule::new("r").then(Action::insert("nope")))
            .is_err());
        // Duplicate name.
        sqlcm.add_rule(Rule::new("dup")).unwrap();
        assert!(sqlcm.add_rule(Rule::new("dup")).is_err());
        assert!(sqlcm.remove_rule("dup"));
        assert!(!sqlcm.remove_rule("dup"));
    }

    #[test]
    fn disabled_rule_does_not_fire() {
        let (engine, sqlcm) = setup();
        let rule = sqlcm
            .add_rule(
                Rule::new("maybe")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::send_mail("x", "y")),
            )
            .unwrap();
        rule.set_enabled(false);
        seed(&engine, 2);
        assert_eq!(sqlcm.outbox().len(), 0);
        rule.set_enabled(true);
        seed_more(&engine);
        assert_eq!(sqlcm.outbox().len(), 1);
    }

    fn seed_more(engine: &Engine) {
        let mut s = engine.connect("seed", "seed");
        s.execute("INSERT INTO t VALUES (1000, 1)").unwrap();
    }

    #[test]
    fn lat_persist_restore_roundtrip() {
        let (engine, sqlcm) = setup();
        engine
            .execute_batch("CREATE TABLE saved (sig INT, avg_d FLOAT, n INT, at TIMESTAMP);")
            .unwrap();
        sqlcm
            .define_lat(
                LatSpec::new("D")
                    .group_by("Query.Logical_Signature", "Sig")
                    .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_D")
                    .aggregate(LatAggFunc::Count, "", "N"),
            )
            .unwrap();
        for secs in [2.0, 4.0] {
            let mut q = sqlcm_common::QueryInfo::synthetic(1, "q");
            q.logical_signature = Some(7);
            q.duration_micros = (secs * 1e6) as u64;
            sqlcm
                .lat("D")
                .unwrap()
                .insert(&objects::query_object(&q))
                .unwrap();
        }
        sqlcm.persist_lat("D", "saved").unwrap();
        // "Restart": reset, then restore from the table.
        sqlcm.lat("D").unwrap().reset();
        assert_eq!(sqlcm.lat("D").unwrap().row_count(), 0);
        let n = sqlcm.restore_lat("D", "saved", Some("N")).unwrap();
        assert_eq!(n, 1);
        let rows = sqlcm.lat("D").unwrap().rows();
        assert_eq!(rows[0][1], Value::Float(3.0));
        assert_eq!(rows[0][2], Value::Int(2));
    }

    #[test]
    fn detach_stops_monitoring() {
        let (engine, sqlcm) = setup();
        sqlcm
            .add_rule(
                Rule::new("m")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::send_mail("x", "y")),
            )
            .unwrap();
        seed(&engine, 1);
        assert_eq!(sqlcm.outbox().len(), 1);
        assert!(sqlcm.detach(&engine));
        seed_more(&engine);
        assert_eq!(sqlcm.outbox().len(), 1, "no events after detach");
    }

    #[test]
    fn action_errors_are_swallowed() {
        let (engine, sqlcm) = setup();
        // Persist into a table that doesn't exist: queries must keep working.
        sqlcm
            .add_rule(
                Rule::new("broken")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::persist_object("missing_table", "Query", &["ID"])),
            )
            .unwrap();
        seed(&engine, 2);
        assert!(sqlcm.stats().action_errors >= 2);
        assert!(sqlcm.last_error().unwrap().contains("missing_table"));
        // The workload itself was unaffected.
        assert_eq!(
            engine.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
            Value::Int(2)
        );
    }

    #[test]
    fn login_audit_rule() {
        let (engine, sqlcm) = setup();
        engine
            .execute_batch("CREATE TABLE login_failures (who TEXT, app TEXT);")
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("audit_failures")
                    .on(RuleEvent::Login)
                    .when("Session.Success = FALSE")
                    .then(Action::persist_object(
                        "login_failures",
                        "Session",
                        &["User", "Application"],
                    )),
            )
            .unwrap();
        engine.connect("good", "app");
        engine.failed_login("mallory", "cracker");
        engine.failed_login("mallory", "cracker");
        let rows = engine.query("SELECT COUNT(*) FROM login_failures").unwrap();
        assert_eq!(rows[0][0], Value::Int(2));
    }

    // ------------------------------------------------------------ telemetry

    #[test]
    fn telemetry_snapshot_is_consistent_with_stats() {
        let (engine, sqlcm) = setup();
        sqlcm
            .define_lat(
                LatSpec::new("ByType")
                    .group_by("Query.Query_Type", "QType")
                    .aggregate(LatAggFunc::Count, "", "N"),
            )
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("track")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::insert("ByType")),
            )
            .unwrap();
        seed(&engine, 4);
        engine.query("SELECT * FROM t").unwrap();

        let snap = sqlcm.telemetry();
        let stats = sqlcm.stats();
        assert_eq!(snap.stats, stats);
        // Per-probe counts partition the global event count exactly.
        assert_eq!(
            snap.probes.iter().map(|p| p.events).sum::<u64>(),
            stats.events
        );
        // Per-rule counters partition the global ones (one rule here).
        assert_eq!(
            snap.rules.iter().map(|r| r.evaluations).sum::<u64>(),
            stats.evaluations
        );
        assert_eq!(snap.rules.iter().map(|r| r.fires).sum::<u64>(), stats.fires);
        assert_eq!(
            snap.rules.iter().map(|r| r.actions).sum::<u64>(),
            stats.actions
        );
        let track = &snap.rules[0];
        assert_eq!(track.name, "track");
        assert_eq!(track.event, "Query.Commit");
        assert_eq!(track.condition.count, track.evaluations);
        assert_eq!(track.action.count, track.fires);
        // LAT attribution made it into the snapshot.
        let by_type = snap.lats.iter().find(|l| l.name == "ByType").unwrap();
        assert_eq!(by_type.inserts, stats.fires);
        assert!(by_type.rows >= 2 && by_type.row_high_water >= by_type.rows);
        // Every firing is in the flight recorder (workload fits the ring).
        assert_eq!(snap.flight_total, stats.fires);
        assert!(snap
            .flight_records
            .iter()
            .all(|r| r.rule == "track" && r.fired && r.event == "Query.Commit"));
        // Renderers don't panic and carry the headline numbers.
        assert!(snap.to_text().contains("Query.Commit"));
        assert!(snap.to_json().contains("\"rules\":[{\"name\":\"track\""));
    }

    #[test]
    fn telemetry_disabled_gates_clocks_but_not_counts() {
        let (engine, sqlcm) = setup();
        sqlcm
            .add_rule(
                Rule::new("mail")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::send_mail("x", "y")),
            )
            .unwrap();
        assert!(sqlcm.telemetry_enabled());
        sqlcm.set_telemetry_enabled(false);
        seed(&engine, 3);
        let snap = sqlcm.telemetry();
        // Counters still attribute...
        assert_eq!(
            snap.probes.iter().map(|p| p.events).sum::<u64>(),
            snap.stats.events
        );
        assert_eq!(snap.rules[0].fires, 3);
        // ...but nothing that needs a clock read was recorded.
        assert!(snap.rules[0].condition.is_empty());
        assert!(snap.rules[0].action.is_empty());
        assert!(snap.probes.iter().all(|p| p.on_event.is_empty()));
        assert!(snap.flight_records.is_empty());
        sqlcm.set_telemetry_enabled(true);
        seed_more(&engine);
        assert!(!sqlcm.telemetry().flight_records.is_empty());
    }

    #[test]
    fn rule_errors_are_attributed_per_rule() {
        let (engine, sqlcm) = setup();
        sqlcm
            .add_rule(
                Rule::new("broken")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::persist_object("missing_table", "Query", &["ID"])),
            )
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("fine")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::send_mail("x", "y")),
            )
            .unwrap();
        seed(&engine, 3);
        let errors = sqlcm.rule_errors();
        assert_eq!(errors.len(), 1, "only the broken rule has errors");
        assert_eq!(errors[0].rule, "broken");
        assert_eq!(errors[0].count, 3);
        assert!(errors[0].message.contains("missing_table"));
        // The snapshot carries the same attribution per rule.
        let snap = sqlcm.telemetry();
        let broken = snap.rules.iter().find(|r| r.name == "broken").unwrap();
        assert_eq!(broken.last_error.as_ref().unwrap().count, 3);
        assert!(snap
            .rules
            .iter()
            .find(|r| r.name == "fine")
            .unwrap()
            .last_error
            .is_none());
        // Firings with failed actions show their error count in the recorder.
        assert!(snap
            .flight_records
            .iter()
            .filter(|r| r.rule == "broken")
            .all(|r| r.errors == 1));
    }

    /// End-to-end self-monitoring bridge: an ECA rule subscribed to
    /// `Monitor.Tick` observes the monitor's own health as a synthetic
    /// `Monitor` object (and the static analyzer admits the class).
    #[test]
    fn self_monitoring_rule_fires_on_monitor_tick() {
        use sqlcm_common::ManualClock;
        let (clock, handle) = ManualClock::shared(0);
        let engine = Engine::new(EngineConfig {
            clock: Some(clock),
            ..Default::default()
        })
        .unwrap();
        engine
            .execute_batch(
                "CREATE TABLE t (id INT PRIMARY KEY, v INT);\
                 CREATE TABLE health_log (name TEXT, events INT, rules INT);",
            )
            .unwrap();
        let sqlcm = Sqlcm::attach(&engine);
        // A probe-subscribed rule so engine events actually reach the monitor
        // ("no monitoring unless required by a rule" — with only a
        // Monitor.Tick rule the probe-interest mask stays empty).
        sqlcm
            .add_rule(
                Rule::new("audit")
                    .on(RuleEvent::QueryCommit)
                    .then(Action::send_mail("dba", "commit {Query.ID}")),
            )
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new("watch_self")
                    .on(RuleEvent::MonitorTick)
                    .when("Monitor.Events >= 0 AND Monitor.Action_Errors = 0")
                    .then(Action::persist_object(
                        "health_log",
                        "Monitor",
                        &["Name", "Events", "Rule_Count"],
                    )),
            )
            .unwrap();
        let mut s = engine.connect("dba", "demo");
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        let events_before = sqlcm.stats().events;
        assert!(events_before > 0);

        // Timer-driven path: the reserved timer raises Monitor.Tick.
        sqlcm.enable_self_monitoring(1_000_000);
        handle.advance(1_000_000);
        sqlcm.poll_timers();
        let rows = engine
            .query("SELECT name, events, rules FROM health_log")
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::text("sqlcm"));
        assert_eq!(rows[0][1], Value::Int(events_before as i64));
        assert_eq!(rows[0][2], Value::Int(2));

        // Direct path, after disarming the timer.
        sqlcm.disable_self_monitoring();
        handle.advance(5_000_000);
        sqlcm.poll_timers();
        assert_eq!(
            engine.query("SELECT COUNT(*) FROM health_log").unwrap()[0][0],
            Value::Int(1),
            "disarmed timer raises no more ticks"
        );
        sqlcm.poll_self_monitor();
        assert_eq!(
            engine.query("SELECT COUNT(*) FROM health_log").unwrap()[0][0],
            Value::Int(2)
        );
        // The tick itself was counted as a monitor evaluation.
        assert!(sqlcm.rule("watch_self").unwrap().stats().fires >= 2);
    }

    #[test]
    fn self_monitor_tick_without_subscribers_is_free() {
        let (_engine, sqlcm) = setup();
        sqlcm.poll_self_monitor();
        assert_eq!(sqlcm.stats().evaluations, 0, "no rules: tick is a no-op");
    }
}
