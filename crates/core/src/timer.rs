//! `Timer` objects (paper §5.1 and Appendix A).
//!
//! "In cases where the condition evaluation cannot be tied to a system event …
//! the Timer object can be used to instrument a background thread that
//! periodically evaluates such rules." A timer is configured by the `Set(Time,
//! number_alarms)` action: `number_alarms` of `0` disables, a negative number
//! loops forever.
//!
//! The registry itself is passive: [`TimerRegistry::due_timers`] returns the
//! timers whose alarm time has passed (advancing their schedule). Production
//! code drives it from a background thread (`Sqlcm::start_timer_thread`); tests
//! drive it directly with a manual clock for determinism.

use parking_lot::Mutex;
use sqlcm_common::{SharedClock, Timestamp};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct TimerState {
    period_micros: u64,
    /// Alarms left; negative = infinite.
    remaining: i64,
    next_fire: Timestamp,
}

/// A due alarm, as handed to the rule engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DueAlarm {
    pub name: String,
    pub fired_at: Timestamp,
    /// Alarms remaining *after* this one (negative = infinite).
    pub remaining: i64,
}

/// All timers of one SQLCM instance.
pub struct TimerRegistry {
    clock: SharedClock,
    timers: Mutex<HashMap<String, TimerState>>,
}

impl TimerRegistry {
    pub fn new(clock: SharedClock) -> Self {
        TimerRegistry {
            clock,
            timers: Mutex::new(HashMap::new()),
        }
    }

    /// The `Set(Time, number_alarms)` action (§5.3).
    pub fn set(&self, name: &str, period_micros: u64, number_alarms: i64) {
        let mut timers = self.timers.lock();
        if number_alarms == 0 {
            timers.remove(name);
            return;
        }
        let now = self.clock.now_micros();
        timers.insert(
            name.to_string(),
            TimerState {
                period_micros: period_micros.max(1),
                remaining: number_alarms,
                next_fire: now + period_micros.max(1),
            },
        );
    }

    /// Is this timer armed?
    pub fn is_set(&self, name: &str) -> bool {
        self.timers.lock().contains_key(name)
    }

    pub fn len(&self) -> usize {
        self.timers.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Earliest upcoming alarm time, for the polling thread's sleep.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.timers.lock().values().map(|t| t.next_fire).min()
    }

    /// Collect every alarm due at the current clock reading and advance (or
    /// retire) the corresponding timers. A timer that fell far behind fires once
    /// per poll, not once per missed period (alarm coalescing).
    pub fn due_timers(&self) -> Vec<DueAlarm> {
        let now = self.clock.now_micros();
        let mut due = Vec::new();
        let mut timers = self.timers.lock();
        timers.retain(|name, t| {
            if t.next_fire > now {
                return true;
            }
            if t.remaining > 0 {
                t.remaining -= 1;
            }
            due.push(DueAlarm {
                name: name.clone(),
                fired_at: now,
                remaining: t.remaining,
            });
            if t.remaining == 0 {
                return false;
            }
            // Schedule strictly after `now` (coalesce missed periods).
            let missed = (now - t.next_fire) / t.period_micros + 1;
            t.next_fire += missed * t.period_micros;
            true
        });
        due.sort_by(|a, b| a.name.cmp(&b.name));
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcm_common::ManualClock;

    #[test]
    fn fires_on_schedule_and_counts_down() {
        let (clock, handle) = ManualClock::shared(0);
        let reg = TimerRegistry::new(clock);
        reg.set("audit", 1000, 2);
        assert!(reg.is_set("audit"));
        assert!(reg.due_timers().is_empty(), "not due yet");
        handle.advance(1000);
        let due = reg.due_timers();
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].name, "audit");
        assert_eq!(due[0].remaining, 1);
        handle.advance(1000);
        let due = reg.due_timers();
        assert_eq!(due[0].remaining, 0);
        assert!(!reg.is_set("audit"), "retired after last alarm");
        handle.advance(1000);
        assert!(reg.due_timers().is_empty());
    }

    #[test]
    fn infinite_timer_keeps_firing() {
        let (clock, handle) = ManualClock::shared(0);
        let reg = TimerRegistry::new(clock);
        reg.set("forever", 10, -1);
        for _ in 0..5 {
            handle.advance(10);
            let due = reg.due_timers();
            assert_eq!(due.len(), 1);
            assert_eq!(due[0].remaining, -1);
        }
        assert!(reg.is_set("forever"));
    }

    #[test]
    fn zero_alarms_disables() {
        let (clock, _) = ManualClock::shared(0);
        let reg = TimerRegistry::new(clock);
        reg.set("t", 10, -1);
        reg.set("t", 10, 0);
        assert!(!reg.is_set("t"));
        assert!(reg.is_empty());
    }

    #[test]
    fn missed_periods_coalesce() {
        let (clock, handle) = ManualClock::shared(0);
        let reg = TimerRegistry::new(clock);
        reg.set("t", 10, -1);
        handle.advance(95); // 9 periods behind
        let due = reg.due_timers();
        assert_eq!(due.len(), 1, "one alarm, not nine");
        assert!(reg.due_timers().is_empty(), "rescheduled after now");
        handle.advance(10);
        assert_eq!(reg.due_timers().len(), 1);
    }

    #[test]
    fn next_deadline() {
        let (clock, _) = ManualClock::shared(0);
        let reg = TimerRegistry::new(clock);
        assert_eq!(reg.next_deadline(), None);
        reg.set("a", 100, -1);
        reg.set("b", 50, -1);
        assert_eq!(reg.next_deadline(), Some(50));
    }
}
