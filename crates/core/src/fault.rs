//! Seeded fault injection for external-action sinks.
//!
//! A [`FaultPlan`] describes which external-action kinds fail (mail, command,
//! persist), at what rate, and whether the sink also *stalls* before
//! answering. Installed via `Sqlcm::inject_faults`, it is consulted at the
//! exact points where the monitor would touch a sink — the synchronous
//! `SendMail`/`RunExternal`/`Persist` branches and the deferred-action pump —
//! so the breaker, retry, and overload machinery exercise their real code
//! paths under deterministic, seed-reproducible failure schedules.
//!
//! Probabilistic rates draw from a single seeded `SmallRng` behind a mutex;
//! this is a test-only control surface (the hot path checks one relaxed
//! `AtomicBool` before ever reaching it), so the lock is acceptable — and it
//! keeps the schedule identical for a given seed regardless of thread
//! interleaving *count* (per-kind `EveryNth` rates are interleaving-proof;
//! `Prob` rates are reproducible per draw sequence).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How often an injected fault fires for one action kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultRate {
    /// Never fail (the default).
    Never,
    /// Every attempt fails.
    Always,
    /// Each attempt fails independently with this probability, drawn from the
    /// plan's seeded RNG.
    Prob(f64),
    /// Deterministic: every `n`-th attempt fails (1-based; `EveryNth(3)`
    /// fails attempts 3, 6, 9, …). `EveryNth(0)` never fails.
    EveryNth(u64),
}

impl FaultRate {
    pub fn is_never(&self) -> bool {
        matches!(self, FaultRate::Never) || matches!(self, FaultRate::EveryNth(0))
    }
}

/// Which sink an injected fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    Mail,
    Command,
    Persist,
}

impl FaultKind {
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Mail => "mail",
            FaultKind::Command => "command",
            FaultKind::Persist => "persist",
        }
    }
}

/// A complete injection schedule. Build with the fluent setters:
///
/// ```
/// use sqlcm_core::{FaultPlan, FaultRate};
/// let plan = FaultPlan::seeded(42)
///     .mail(FaultRate::Prob(0.5))
///     .persist(FaultRate::EveryNth(3))
///     .stall_micros(200);
/// assert_eq!(plan.seed, 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the probabilistic draws — same seed, same schedule.
    pub seed: u64,
    pub mail: FaultRate,
    pub command: FaultRate,
    pub persist: FaultRate,
    /// Busy-stall applied before *every* faultable sink call (failed or not),
    /// simulating a slow external dependency. 0 disables.
    pub stall_micros: u64,
}

impl FaultPlan {
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mail: FaultRate::Never,
            command: FaultRate::Never,
            persist: FaultRate::Never,
            stall_micros: 0,
        }
    }

    pub fn mail(mut self, rate: FaultRate) -> FaultPlan {
        self.mail = rate;
        self
    }

    pub fn command(mut self, rate: FaultRate) -> FaultPlan {
        self.command = rate;
        self
    }

    pub fn persist(mut self, rate: FaultRate) -> FaultPlan {
        self.persist = rate;
        self
    }

    /// Apply one rate to all three kinds.
    pub fn all(mut self, rate: FaultRate) -> FaultPlan {
        self.mail = rate;
        self.command = rate;
        self.persist = rate;
        self
    }

    pub fn stall_micros(mut self, micros: u64) -> FaultPlan {
        self.stall_micros = micros;
        self
    }

    fn rate(&self, kind: FaultKind) -> FaultRate {
        match kind {
            FaultKind::Mail => self.mail,
            FaultKind::Command => self.command,
            FaultKind::Persist => self.persist,
        }
    }
}

/// Live injection state: the plan plus its RNG and per-kind attempt/injected
/// counters (the counters also drive `EveryNth`).
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    rng: Mutex<SmallRng>,
    attempts: [AtomicU64; 3],
    injected: [AtomicU64; 3],
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            rng: Mutex::new(SmallRng::seed_from_u64(plan.seed)),
            attempts: Default::default(),
            injected: Default::default(),
        }
    }

    fn idx(kind: FaultKind) -> usize {
        match kind {
            FaultKind::Mail => 0,
            FaultKind::Command => 1,
            FaultKind::Persist => 2,
        }
    }

    /// Decide whether this attempt fails, advancing the per-kind attempt
    /// counter (and the RNG for probabilistic rates).
    pub fn should_fail(&self, kind: FaultKind) -> bool {
        let i = Self::idx(kind);
        let attempt = self.attempts[i].fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match self.plan.rate(kind) {
            FaultRate::Never => false,
            FaultRate::Always => true,
            FaultRate::Prob(p) => {
                if p <= 0.0 {
                    false
                } else if p >= 1.0 {
                    true
                } else {
                    self.rng.lock().gen_bool(p)
                }
            }
            FaultRate::EveryNth(n) => n != 0 && attempt.is_multiple_of(n),
        };
        if fail {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        fail
    }

    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[Self::idx(kind)].load(Ordering::Relaxed)
    }

    pub fn attempts(&self, kind: FaultKind) -> u64 {
        self.attempts[Self::idx(kind)].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nth_is_deterministic() {
        let s = FaultState::new(FaultPlan::seeded(1).command(FaultRate::EveryNth(3)));
        let pattern: Vec<bool> = (0..9).map(|_| s.should_fail(FaultKind::Command)).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(s.injected(FaultKind::Command), 3);
        assert_eq!(s.attempts(FaultKind::Command), 9);
    }

    #[test]
    fn prob_is_seed_reproducible() {
        let a = FaultState::new(FaultPlan::seeded(7).mail(FaultRate::Prob(0.5)));
        let b = FaultState::new(FaultPlan::seeded(7).mail(FaultRate::Prob(0.5)));
        let pa: Vec<bool> = (0..64).map(|_| a.should_fail(FaultKind::Mail)).collect();
        let pb: Vec<bool> = (0..64).map(|_| b.should_fail(FaultKind::Mail)).collect();
        assert_eq!(pa, pb);
        assert!(pa.iter().any(|&f| f) && pa.iter().any(|&f| !f));
    }

    #[test]
    fn kinds_are_independent() {
        let s = FaultState::new(FaultPlan::seeded(1).mail(FaultRate::Always));
        assert!(s.should_fail(FaultKind::Mail));
        assert!(!s.should_fail(FaultKind::Command));
        assert!(!s.should_fail(FaultKind::Persist));
    }
}
