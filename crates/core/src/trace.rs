//! Causal tracing: per-event span trees, cascade provenance, and rule-firing
//! explainers.
//!
//! Aggregate telemetry ([`crate::telemetry`]) answers *how many* — events,
//! firings, fetches. It cannot answer *which event caused which cascade* or
//! *why a condition evaluated false*. This module answers those: a sampled
//! root event gets a trace ID and a span tree recording everything its
//! dispatch did — event receipt, hoisted LAT lookups (hit/miss), each rule's
//! condition decision with the bound attribute values spelled out, action
//! execution, LAT mutations, and every cascaded event (LAT eviction, timer,
//! re-entrant probe) linked back to the span that caused it, so the full
//! provenance tree of a cascade is reconstructable after the fact.
//!
//! # Span relations
//!
//! Spans carry **two** links:
//!
//! * `parent` — strict stack nesting: a child starts after its parent starts
//!   and closes before it closes (the flame-graph relation, what Chrome's
//!   timeline renders). Cascaded events are *deferred* (paper §5: queued and
//!   drained after the current event's rules complete), so they are **not**
//!   nested under the span that raised them — they are top-level spans in
//!   the same trace.
//! * `cause` — provenance: for a cascaded [`SpanKind::Event`], the
//!   [`SpanKind::LatMutation`] or [`SpanKind::Action`] span whose side
//!   effect queued it. The rendered text tree and the Chrome flow arrows
//!   both follow `cause`, which is what makes "this commit evicted that row
//!   which fired that rule" readable.
//!
//! Every event span also records its **cascade depth** — root events are 0,
//! each deferred hop adds 1 — the same measure
//! [`sqlcm_analyze::Analyzer::max_cascade_depth`] bounds statically, so
//! traces cross-check the analyzer (and `stats`: with every event sampled,
//! span counts must reconcile with the evaluation/fire counters).
//!
//! # Cost model
//!
//! Sampling ([`TraceSampling`]) decides everything. Disabled (the default)
//! costs one relaxed atomic load per dispatched event — the hot path stays
//! allocation-free and registry-lock-free, pinned by
//! `tests/dispatch_hotpath.rs`. A *sampled* event stages its spans in a
//! buffer local to the dispatching thread's stack (no shared state, no
//! locks while recording) and hands the buffer to the bounded trace ring on
//! completion: one short uncontended mutex per completed trace, with
//! evicted traces' span buffers recycled through a [`BufferPool`] so steady
//! state re-uses rather than reallocates. The `t7_trace_overhead` bench
//! gates both modes.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

use sqlcm_common::ProbeKind;
use sqlcm_telemetry::{BoundedRing, BufferPool, Stopwatch};

use crate::rules::EvalContext;
use crate::telemetry::json_str;

/// Trace ring depth: the most recent N completed traces are retained,
/// oldest dropped first.
pub const TRACE_RING_CAPACITY: usize = 64;

/// Hard cap on spans staged per trace; a pathological cascade truncates
/// (flagged on the snapshot) instead of growing without bound.
pub const MAX_SPANS_PER_TRACE: usize = 4096;

/// Bound on pooled span buffers (covers the ring plus in-flight staging).
const SPAN_POOL_BOUND: usize = 8;

/// Sentinel span ID: "no span" (used on the untraced path and for truncated
/// traces; all recording methods ignore it).
pub(crate) const NONE_SPAN: u32 = u32::MAX;

const MODE_OFF: u8 = 0;
const MODE_EVERY_NTH: u8 = 1;
const MODE_PER_PROBE: u8 = 2;

/// Trace sampling policy (see [`crate::Sqlcm::set_trace_sampling`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceSampling {
    /// No tracing (the default): one relaxed atomic load per event.
    #[default]
    Off,
    /// Trace every Nth sampled-eligible root event (engine probes and
    /// internally raised roots such as timer alarms). `0` and `1` both mean
    /// "every event".
    EveryNth(u32),
    /// Per-probe-kind rates: trace every Nth root event of each listed kind;
    /// unlisted kinds (and internal roots) are not traced. A rate of `0`
    /// disables that kind.
    PerProbe(Vec<(ProbeKind, u32)>),
}

/// One span in a trace. Times are nanoseconds relative to the trace start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span ID, unique within the trace (dense, in open order).
    pub id: u32,
    /// Nesting parent (`None` for event spans — each dispatched event of the
    /// batch is top-level; deferral breaks stack nesting across events).
    pub parent: Option<u32>,
    /// Provenance link for cascaded events: the span whose side effect
    /// queued this event.
    pub cause: Option<u32>,
    pub start_nanos: u64,
    pub end_nanos: u64,
    pub kind: SpanKind,
}

/// What a [`TraceSpan`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    /// An event entering dispatch (the root, or a cascaded/deferred one).
    Event {
        /// Probe-convention name, e.g. `"Query.Commit"` or
        /// `"Lat.Eviction(Hot)"`.
        name: String,
        /// Cascade depth: 0 for the root, +1 per deferred hop.
        depth: u32,
    },
    /// A LAT row lookup binding the condition's implicit ∃ (instant).
    LatLookup {
        lat: String,
        /// Whether a row was found for the in-scope grouping key.
        hit: bool,
        /// Served from the event-shared hoist slot instead of fetching.
        hoisted: bool,
    },
    /// One rule's condition evaluation (plus its actions as child spans).
    Rule {
        name: String,
        fired: bool,
        /// "Why it fired / why it didn't": the condition's bound attribute
        /// values and its decision, e.g.
        /// `Query.Duration=1500000, Hot.N=<no row> -> false (missing LAT row)`.
        explain: String,
    },
    /// One action execution.
    Action { action: &'static str, ok: bool },
    /// A LAT mutation performed by an action (instant). Cascaded eviction
    /// events point their `cause` at this span.
    LatMutation {
        lat: String,
        op: &'static str,
        /// Rows evicted by this mutation (each queues one deferred event
        /// when a rule subscribes).
        evicted: u32,
    },
}

impl SpanKind {
    /// Short label for renderers.
    fn label(&self) -> &str {
        match self {
            SpanKind::Event { name, .. } => name,
            SpanKind::LatLookup { lat, .. } => lat,
            SpanKind::Rule { name, .. } => name,
            SpanKind::Action { action, .. } => action,
            SpanKind::LatMutation { lat, .. } => lat,
        }
    }
}

/// A completed trace: one sampled root event and everything its dispatch
/// did, including all deferred cascade hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Monotone per-instance trace ID (starts at 1; 0 is reserved for "not
    /// traced" in flight-recorder cross-links).
    pub trace_id: u64,
    /// Name of the root event.
    pub root_event: String,
    /// Wall-clock microseconds (monitor clock) when the trace started.
    pub started_micros: u64,
    /// Total wall time of the dispatch batch, nanoseconds.
    pub duration_nanos: u64,
    /// Deepest cascade hop observed (0 = no cascading).
    pub max_cascade_depth: u32,
    /// Rule-condition evaluations recorded.
    pub evaluations: u32,
    /// Evaluations that fired.
    pub fires: u32,
    /// Span recording hit [`MAX_SPANS_PER_TRACE`] and stopped early.
    pub truncated: bool,
    /// All spans, in open order (span `id` == index).
    pub spans: Vec<TraceSpan>,
}

impl TraceSnapshot {
    /// Render as an indented tree. Children follow the nesting `parent`
    /// link; cascaded events are placed under their provenance `cause`, so
    /// the output reads as a causal tree even though deferred events ran
    /// after their cause's span closed.
    pub fn to_text_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace #{} {} spans={} depth={} evals={} fires={} took={}ns{}",
            self.trace_id,
            self.root_event,
            self.spans.len(),
            self.max_cascade_depth,
            self.evaluations,
            self.fires,
            self.duration_nanos,
            if self.truncated { " [truncated]" } else { "" },
        );
        for root in self.spans.iter().filter(|s| self.tree_parent(s).is_none()) {
            self.render_span(&mut out, root, 1);
        }
        out
    }

    /// The node a span hangs under in the rendered tree: `cause` for
    /// cascaded events, `parent` for everything else.
    fn tree_parent(&self, span: &TraceSpan) -> Option<u32> {
        span.cause.or(span.parent)
    }

    fn render_span(&self, out: &mut String, span: &TraceSpan, indent: usize) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(indent);
        let line = match &span.kind {
            SpanKind::Event { name, depth } => {
                format!(
                    "event {name} depth={depth} [{}ns]",
                    span.end_nanos - span.start_nanos
                )
            }
            SpanKind::LatLookup { lat, hit, hoisted } => format!(
                "lookup {lat} {}{}",
                if *hit { "hit" } else { "miss" },
                if *hoisted { " (hoisted)" } else { "" },
            ),
            SpanKind::Rule {
                name,
                fired,
                explain,
            } => format!(
                "rule {name} {}: {explain} [{}ns]",
                if *fired { "FIRED" } else { "skipped" },
                span.end_nanos - span.start_nanos,
            ),
            SpanKind::Action { action, ok } => format!(
                "action {action} {} [{}ns]",
                if *ok { "ok" } else { "FAILED" },
                span.end_nanos - span.start_nanos,
            ),
            SpanKind::LatMutation { lat, op, evicted } => {
                format!("mutate {lat} {op} evicted={evicted}")
            }
        };
        let _ = writeln!(out, "{pad}{line}");
        for child in self
            .spans
            .iter()
            .filter(|s| self.tree_parent(s) == Some(span.id))
        {
            self.render_span(out, child, indent + 1);
        }
    }

    /// This trace's spans as Chrome trace-event objects, appended to `out`.
    /// `links` numbers flow arrows uniquely across an export.
    fn chrome_events(&self, out: &mut Vec<String>, links: &mut u64) {
        let ts = |nanos: u64| -> String {
            // Chrome expects microseconds; keep sub-µs precision as decimals.
            format!("{:.3}", self.started_micros as f64 + nanos as f64 / 1000.0)
        };
        for span in &self.spans {
            let (cat, args) = match &span.kind {
                SpanKind::Event { depth, .. } => {
                    ("event".to_string(), format!("{{\"depth\":{depth}}}"))
                }
                SpanKind::LatLookup { hit, hoisted, .. } => (
                    "lookup".to_string(),
                    format!("{{\"hit\":{hit},\"hoisted\":{hoisted}}}"),
                ),
                SpanKind::Rule { fired, explain, .. } => (
                    "rule".to_string(),
                    format!("{{\"fired\":{fired},\"explain\":{}}}", json_str(explain)),
                ),
                SpanKind::Action { ok, .. } => ("action".to_string(), format!("{{\"ok\":{ok}}}")),
                SpanKind::LatMutation { op, evicted, .. } => (
                    "mutation".to_string(),
                    format!("{{\"op\":{},\"evicted\":{evicted}}}", json_str(op)),
                ),
            };
            let name = json_str(span.kind.label());
            let instant = span.end_nanos == span.start_nanos;
            if instant {
                out.push(format!(
                    "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{args}}}",
                    ts(span.start_nanos),
                    self.trace_id,
                ));
            } else {
                out.push(format!(
                    "{{\"name\":{name},\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{args}}}",
                    ts(span.start_nanos),
                    (span.end_nanos - span.start_nanos) as f64 / 1000.0,
                    self.trace_id,
                ));
            }
            // Cascade provenance as a flow arrow: cause span -> event span.
            if let Some(cause) = span.cause {
                if let Some(from) = self.spans.get(cause as usize) {
                    *links += 1;
                    let id = *links;
                    out.push(format!(
                        "{{\"name\":\"cascade\",\"cat\":\"cascade\",\"ph\":\"s\",\"id\":{id},\"ts\":{},\"pid\":1,\"tid\":{}}}",
                        ts(from.start_nanos),
                        self.trace_id,
                    ));
                    out.push(format!(
                        "{{\"name\":\"cascade\",\"cat\":\"cascade\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{},\"pid\":1,\"tid\":{}}}",
                        ts(span.start_nanos),
                        self.trace_id,
                    ));
                }
            }
        }
    }

    /// This trace alone as a `chrome://tracing`-loadable JSON document.
    pub fn to_chrome_json(&self) -> String {
        chrome_trace_json(std::slice::from_ref(self))
    }
}

/// Export traces as one Chrome trace-event JSON document
/// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` / Perfetto.
/// Each trace renders on its own thread row (`tid` = trace ID) with cascade
/// provenance drawn as flow arrows.
pub fn chrome_trace_json(traces: &[TraceSnapshot]) -> String {
    let mut events = Vec::new();
    let mut links = 0u64;
    for trace in traces {
        trace.chrome_events(&mut events, &mut links);
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(&events.join(","));
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Tracing slice of a telemetry snapshot (the `tracing` section of
/// [`crate::TelemetrySnapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracingTelemetry {
    /// Active sampling policy, rendered (`"off"`, `"every_nth(64)"`,
    /// `"per_probe"`).
    pub sampling: String,
    /// Root events sampled into a trace.
    pub sampled: u64,
    /// Traces completed and retained (a sampled event whose dispatch
    /// recorded no spans — no subscribed rules — is discarded).
    pub completed: u64,
    /// Completed traces evicted from the ring (drop-oldest).
    pub dropped: u64,
    /// Spans across all completed traces.
    pub spans: u64,
    /// Deepest cascade observed in any completed trace.
    pub max_cascade_depth: u64,
    /// Traces currently in the ring.
    pub ring_len: u64,
    pub ring_capacity: u64,
}

impl Default for TracingTelemetry {
    fn default() -> TracingTelemetry {
        TracingTelemetry {
            sampling: "off".to_string(),
            sampled: 0,
            completed: 0,
            dropped: 0,
            spans: 0,
            max_cascade_depth: 0,
            ring_len: 0,
            ring_capacity: TRACE_RING_CAPACITY as u64,
        }
    }
}

// ------------------------------------------------------------ staging

/// Per-dispatch staging for one sampled trace. Lives on the dispatching
/// thread's stack for the duration of the batch (root event + all deferred
/// hops); recording touches nothing shared.
pub(crate) struct TraceCtx {
    id: u64,
    started_micros: u64,
    sw: Stopwatch,
    spans: Vec<TraceSpan>,
    max_depth: u32,
    evaluations: u32,
    fires: u32,
    truncated: bool,
}

impl TraceCtx {
    pub fn trace_id(&self) -> u64 {
        self.id
    }

    fn now(&self) -> u64 {
        self.sw.elapsed_nanos()
    }

    fn open(&mut self, parent: Option<u32>, cause: Option<u32>, kind: SpanKind) -> u32 {
        if self.spans.len() >= MAX_SPANS_PER_TRACE {
            self.truncated = true;
            return NONE_SPAN;
        }
        let id = self.spans.len() as u32;
        let now = self.now();
        self.spans.push(TraceSpan {
            id,
            parent,
            cause,
            start_nanos: now,
            end_nanos: now,
            kind,
        });
        id
    }

    fn valid(parent: u32) -> Option<u32> {
        (parent != NONE_SPAN).then_some(parent)
    }

    /// Open an event-receipt span. `cause` is the queueing span for
    /// deferred events ([`NONE_SPAN`] for the root).
    pub fn open_event(&mut self, name: String, cause: u32, depth: u32) -> u32 {
        self.max_depth = self.max_depth.max(depth);
        self.open(None, Self::valid(cause), SpanKind::Event { name, depth })
    }

    /// Open a rule-evaluation span under an event span.
    pub fn open_rule(&mut self, event_span: u32, name: &str) -> u32 {
        self.evaluations += 1;
        self.open(
            Self::valid(event_span),
            None,
            SpanKind::Rule {
                name: name.to_string(),
                fired: false,
                explain: String::new(),
            },
        )
    }

    /// Record the condition decision and explainer on an open rule span.
    pub fn rule_outcome(&mut self, rule_span: u32, did_fire: bool, why: String) {
        if did_fire {
            self.fires += 1;
        }
        if let Some(span) = self.span_mut(rule_span) {
            if let SpanKind::Rule { fired, explain, .. } = &mut span.kind {
                *fired = did_fire;
                *explain = why;
            }
        }
    }

    /// Open an action-execution span under a rule span.
    pub fn open_action(&mut self, rule_span: u32, action: &'static str) -> u32 {
        self.open(
            Self::valid(rule_span),
            None,
            SpanKind::Action { action, ok: true },
        )
    }

    /// Mark an open action span failed.
    pub fn action_failed(&mut self, action_span: u32) {
        if let Some(span) = self.span_mut(action_span) {
            if let SpanKind::Action { ok, .. } = &mut span.kind {
                *ok = false;
            }
        }
    }

    /// Record an instant LAT-lookup span under a rule span.
    pub fn lat_lookup(&mut self, rule_span: u32, lat: &str, hit: bool, hoisted: bool) {
        self.open(
            Self::valid(rule_span),
            None,
            SpanKind::LatLookup {
                lat: lat.to_string(),
                hit,
                hoisted,
            },
        );
    }

    /// Record an instant LAT-mutation span under an action span; returns the
    /// span ID so queued eviction events can cite it as their `cause`.
    pub fn lat_mutation(
        &mut self,
        action_span: u32,
        lat: &str,
        op: &'static str,
        evicted: u32,
    ) -> u32 {
        self.open(
            Self::valid(action_span),
            None,
            SpanKind::LatMutation {
                lat: lat.to_string(),
                op,
                evicted,
            },
        )
    }

    /// Close a span (idempotent enough for our stack discipline: called
    /// exactly once per open).
    pub fn close(&mut self, span: u32) {
        let now = self.now();
        if let Some(span) = self.span_mut(span) {
            span.end_nanos = now;
        }
    }

    fn span_mut(&mut self, id: u32) -> Option<&mut TraceSpan> {
        if id == NONE_SPAN {
            return None;
        }
        self.spans.get_mut(id as usize)
    }
}

// ------------------------------------------------------------ tracer

/// Per-instance tracing state: sampling policy, trace-ID source, the
/// bounded ring of completed traces, and the span-buffer pool.
pub(crate) struct Tracer {
    mode: AtomicU8,
    every_n: AtomicU32,
    per_probe: [AtomicU32; ProbeKind::COUNT],
    /// Root events seen while in every-Nth mode (the modulus source).
    seen: AtomicU64,
    /// Per-kind root events seen while in per-probe mode.
    probe_seen: [AtomicU64; ProbeKind::COUNT],
    next_id: AtomicU64,
    ring: BoundedRing<TraceSnapshot>,
    pool: BufferPool<TraceSpan>,
    sampled: AtomicU64,
    completed: AtomicU64,
    spans_recorded: AtomicU64,
    max_depth: AtomicU64,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer {
            mode: AtomicU8::new(MODE_OFF),
            every_n: AtomicU32::new(0),
            per_probe: std::array::from_fn(|_| AtomicU32::new(0)),
            seen: AtomicU64::new(0),
            probe_seen: std::array::from_fn(|_| AtomicU64::new(0)),
            next_id: AtomicU64::new(1),
            ring: BoundedRing::new(TRACE_RING_CAPACITY),
            pool: BufferPool::new(SPAN_POOL_BOUND),
            sampled: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            spans_recorded: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        }
    }

    pub fn set_sampling(&self, sampling: TraceSampling) {
        match sampling {
            TraceSampling::Off => self.mode.store(MODE_OFF, Ordering::Relaxed),
            TraceSampling::EveryNth(n) => {
                self.every_n.store(n.max(1), Ordering::Relaxed);
                self.mode.store(MODE_EVERY_NTH, Ordering::Relaxed);
            }
            TraceSampling::PerProbe(rates) => {
                for slot in &self.per_probe {
                    slot.store(0, Ordering::Relaxed);
                }
                for (kind, n) in rates {
                    self.per_probe[kind.index()].store(n, Ordering::Relaxed);
                }
                self.mode.store(MODE_PER_PROBE, Ordering::Relaxed);
            }
        }
    }

    pub fn sampling(&self) -> TraceSampling {
        match self.mode.load(Ordering::Relaxed) {
            MODE_EVERY_NTH => TraceSampling::EveryNth(self.every_n.load(Ordering::Relaxed)),
            MODE_PER_PROBE => TraceSampling::PerProbe(
                ProbeKind::ALL
                    .iter()
                    .filter_map(|k| {
                        let n = self.per_probe[k.index()].load(Ordering::Relaxed);
                        (n != 0).then_some((*k, n))
                    })
                    .collect(),
            ),
            _ => TraceSampling::Off,
        }
    }

    /// Sampling decision for an engine-probe root event. The disabled path is
    /// one relaxed load and a predictable branch; `now_micros` (a clock read)
    /// is invoked only when the event is actually sampled.
    #[inline]
    pub fn sample_probe(
        &self,
        kind: ProbeKind,
        now_micros: impl FnOnce() -> u64,
    ) -> Option<TraceCtx> {
        match self.mode.load(Ordering::Relaxed) {
            MODE_OFF => None,
            MODE_EVERY_NTH => self.sample_nth(now_micros),
            _ => {
                let n = self.per_probe[kind.index()].load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let c = self.probe_seen[kind.index()].fetch_add(1, Ordering::Relaxed);
                c.is_multiple_of(u64::from(n))
                    .then(|| self.start(now_micros()))
            }
        }
    }

    /// Sampling decision for an internally raised root event (timer alarm,
    /// monitor tick, test dispatch). Only every-Nth mode samples these —
    /// per-probe mode is scoped to engine probes by construction.
    #[inline]
    pub fn sample_internal(&self, now_micros: impl FnOnce() -> u64) -> Option<TraceCtx> {
        match self.mode.load(Ordering::Relaxed) {
            MODE_EVERY_NTH => self.sample_nth(now_micros),
            _ => None,
        }
    }

    fn sample_nth(&self, now_micros: impl FnOnce() -> u64) -> Option<TraceCtx> {
        let n = u64::from(self.every_n.load(Ordering::Relaxed).max(1));
        let c = self.seen.fetch_add(1, Ordering::Relaxed);
        c.is_multiple_of(n).then(|| self.start(now_micros()))
    }

    fn start(&self, now_micros: u64) -> TraceCtx {
        self.sampled.fetch_add(1, Ordering::Relaxed);
        TraceCtx {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            started_micros: now_micros,
            sw: Stopwatch::start(),
            spans: self.pool.take(),
            max_depth: 0,
            evaluations: 0,
            fires: 0,
            truncated: false,
        }
    }

    /// Seal a staged trace into the ring. Empty traces (the sampled event
    /// had no subscribed rules) are discarded; evicted traces' span buffers
    /// go back to the pool.
    pub fn finish(&self, ctx: TraceCtx) {
        if ctx.spans.is_empty() {
            self.pool.put(ctx.spans);
            return;
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.spans_recorded
            .fetch_add(ctx.spans.len() as u64, Ordering::Relaxed);
        self.max_depth
            .fetch_max(u64::from(ctx.max_depth), Ordering::Relaxed);
        let snapshot = TraceSnapshot {
            trace_id: ctx.id,
            root_event: ctx
                .spans
                .first()
                .map(|s| s.kind.label().to_string())
                .unwrap_or_default(),
            started_micros: ctx.started_micros,
            duration_nanos: ctx.sw.elapsed_nanos(),
            max_cascade_depth: ctx.max_depth,
            evaluations: ctx.evaluations,
            fires: ctx.fires,
            truncated: ctx.truncated,
            spans: ctx.spans,
        };
        if let Some(evicted) = self.ring.push(snapshot) {
            self.pool.put(evicted.spans);
        }
    }

    /// Completed traces, oldest first.
    pub fn snapshot(&self) -> Vec<TraceSnapshot> {
        self.ring.snapshot()
    }

    /// Drop all retained traces (their buffers are recycled).
    pub fn clear(&self) {
        for trace in self.ring.drain() {
            self.pool.put(trace.spans);
        }
    }

    pub fn telemetry(&self) -> TracingTelemetry {
        let sampling = match self.sampling() {
            TraceSampling::Off => "off".to_string(),
            TraceSampling::EveryNth(n) => format!("every_nth({n})"),
            TraceSampling::PerProbe(_) => "per_probe".to_string(),
        };
        TracingTelemetry {
            sampling,
            sampled: self.sampled.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            dropped: self.ring.dropped(),
            spans: self.spans_recorded.load(Ordering::Relaxed),
            max_cascade_depth: self.max_depth.load(Ordering::Relaxed),
            ring_len: self.ring.len() as u64,
            ring_capacity: self.ring.capacity() as u64,
        }
    }
}

// ------------------------------------------------------------ explainer

/// Build the "why it fired / why it didn't" explainer for one condition
/// evaluation: every `Qualifier.Name` leaf the condition references (the
/// resolved IR carries them verbatim, exactly deduplicated, in source
/// order), with the value it bound to (or `<no row>` for a failed implicit
/// ∃), then the decision. Runs only on sampled evaluations.
pub(crate) fn explain_condition(
    condition: Option<&crate::ir::CondIr>,
    ctx: &EvalContext,
    fired: bool,
    cond_error: bool,
) -> String {
    let Some(cond) = condition else {
        return "no condition -> always fires".to_string();
    };
    let mut out = String::new();
    let mut missing_row = false;
    for (q, name) in &cond.refs {
        if !out.is_empty() {
            out.push_str(", ");
        }
        match ctx.resolve(q, name) {
            Ok(v) => out.push_str(&format!("{q}.{name}={v}")),
            Err(sqlcm_common::Error::NoLatRow) => {
                missing_row = true;
                out.push_str(&format!("{q}.{name}=<no row>"));
            }
            Err(e) => out.push_str(&format!("{q}.{name}=<error: {e}>")),
        }
    }
    if out.is_empty() {
        out.push_str("(no bound references)");
    }
    if cond_error {
        out.push_str(" -> error");
    } else if fired {
        out.push_str(" -> true");
    } else if missing_row {
        out.push_str(" -> false (missing LAT row)");
    } else {
        out.push_str(" -> false");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_trace() -> TraceCtx {
        Tracer::new().start(5)
    }

    #[test]
    fn span_ids_are_dense_and_nesting_links_hold() {
        let mut t = ctx_trace();
        let ev = t.open_event("Query.Commit".into(), NONE_SPAN, 0);
        let rule = t.open_rule(ev, "track");
        t.lat_lookup(rule, "Hot", true, true);
        let action = t.open_action(rule, "Insert");
        let mutation = t.lat_mutation(action, "Hot", "insert", 1);
        let child = t.open_event("Lat.Eviction(Hot)".into(), mutation, 1);
        t.close(child);
        t.close(action);
        t.rule_outcome(rule, true, "x -> true".into());
        t.close(rule);
        t.close(ev);
        assert_eq!(t.spans.len(), 6);
        assert!(t.spans.iter().enumerate().all(|(i, s)| s.id as usize == i));
        assert_eq!(t.spans[1].parent, Some(ev));
        assert_eq!(t.spans[3].parent, Some(rule));
        assert_eq!(t.spans[4].parent, Some(action));
        assert_eq!(t.spans[5].parent, None, "events are top-level");
        assert_eq!(t.spans[5].cause, Some(mutation), "provenance via cause");
        assert_eq!(t.max_depth, 1);
        assert_eq!((t.evaluations, t.fires), (1, 1));
    }

    #[test]
    fn truncation_stops_recording_and_flags_the_trace() {
        let mut t = ctx_trace();
        let ev = t.open_event("Query.Commit".into(), NONE_SPAN, 0);
        for _ in 0..MAX_SPANS_PER_TRACE + 10 {
            t.lat_lookup(ev, "L", false, false);
        }
        assert_eq!(t.spans.len(), MAX_SPANS_PER_TRACE);
        assert!(t.truncated);
        // Opens past the cap return NONE_SPAN and later ops on it no-op.
        let dead = t.open_rule(ev, "r");
        assert_eq!(dead, NONE_SPAN);
        t.rule_outcome(dead, true, "ignored".into());
        t.close(dead);
        assert_eq!(t.fires, 1, "outcome on a dead span still counts the fire");
    }

    #[test]
    fn tracer_round_trip_and_ring_drop_oldest() {
        let tracer = Tracer::new();
        tracer.set_sampling(TraceSampling::EveryNth(1));
        for i in 0..(TRACE_RING_CAPACITY + 5) {
            let mut ctx = tracer.sample_internal(|| i as u64).expect("every event");
            let ev = ctx.open_event("Monitor.Tick".into(), NONE_SPAN, 0);
            ctx.close(ev);
            tracer.finish(ctx);
        }
        let traces = tracer.snapshot();
        assert_eq!(traces.len(), TRACE_RING_CAPACITY);
        // Oldest dropped: the first retained trace is #6.
        assert_eq!(traces[0].trace_id, 6);
        assert!(traces.windows(2).all(|w| w[0].trace_id < w[1].trace_id));
        let tt = tracer.telemetry();
        assert_eq!(tt.dropped, 5);
        assert_eq!(tt.completed, (TRACE_RING_CAPACITY + 5) as u64);
        tracer.clear();
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn empty_traces_are_discarded() {
        let tracer = Tracer::new();
        tracer.set_sampling(TraceSampling::EveryNth(1));
        let ctx = tracer.sample_internal(|| 0).unwrap();
        tracer.finish(ctx);
        assert!(tracer.snapshot().is_empty());
        let tt = tracer.telemetry();
        assert_eq!(tt.sampled, 1);
        assert_eq!(tt.completed, 0);
    }

    #[test]
    fn every_nth_samples_at_the_requested_rate() {
        let tracer = Tracer::new();
        tracer.set_sampling(TraceSampling::EveryNth(4));
        let sampled = (0..100)
            .filter(|_| tracer.sample_internal(|| 0).is_some())
            .count();
        assert_eq!(sampled, 25);
        assert_eq!(tracer.sampling(), TraceSampling::EveryNth(4));
    }

    #[test]
    fn per_probe_scopes_sampling_to_listed_kinds() {
        let tracer = Tracer::new();
        tracer.set_sampling(TraceSampling::PerProbe(vec![(ProbeKind::QueryCommit, 2)]));
        let commits = (0..10)
            .filter(|_| tracer.sample_probe(ProbeKind::QueryCommit, || 0).is_some())
            .count();
        let logins = (0..10)
            .filter(|_| tracer.sample_probe(ProbeKind::Login, || 0).is_some())
            .count();
        assert_eq!(commits, 5);
        assert_eq!(logins, 0);
        assert!(
            tracer.sample_internal(|| 0).is_none(),
            "internal roots excluded"
        );
        assert_eq!(
            tracer.sampling(),
            TraceSampling::PerProbe(vec![(ProbeKind::QueryCommit, 2)])
        );
    }

    #[test]
    fn text_tree_places_cascades_under_their_cause() {
        let tracer = Tracer::new();
        tracer.set_sampling(TraceSampling::EveryNth(1));
        let mut ctx = tracer.sample_internal(|| 0).unwrap();
        let ev = ctx.open_event("Query.Commit".into(), NONE_SPAN, 0);
        let rule = ctx.open_rule(ev, "track");
        let action = ctx.open_action(rule, "Insert");
        let mutation = ctx.lat_mutation(action, "Hot", "insert", 1);
        ctx.close(action);
        ctx.rule_outcome(rule, true, "always".into());
        ctx.close(rule);
        ctx.close(ev);
        let child = ctx.open_event("Lat.Eviction(Hot)".into(), mutation, 1);
        ctx.close(child);
        tracer.finish(ctx);
        let trace = tracer.snapshot().pop().unwrap();
        let tree = trace.to_text_tree();
        let mutation_line = tree
            .lines()
            .find(|l| l.contains("mutate Hot"))
            .expect("mutation rendered");
        let event_line = tree
            .lines()
            .find(|l| l.contains("event Lat.Eviction(Hot)"))
            .expect("cascaded event rendered");
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(
            indent(event_line) > indent(mutation_line),
            "cascaded event is nested under its cause:\n{tree}"
        );
        assert!(tree.contains("rule track FIRED"));
    }

    #[test]
    fn chrome_export_is_structurally_sound() {
        let tracer = Tracer::new();
        tracer.set_sampling(TraceSampling::EveryNth(1));
        let mut ctx = tracer.sample_internal(|| 123).unwrap();
        let ev = ctx.open_event("Query.Commit".into(), NONE_SPAN, 0);
        let rule = ctx.open_rule(ev, "needs \"escaping\"");
        ctx.rule_outcome(rule, false, "Hot.N=<no row> -> false".into());
        ctx.close(rule);
        ctx.close(ev);
        tracer.finish(ctx);
        let json = chrome_trace_json(&tracer.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ns\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("needs \\\"escaping\\\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }
}
