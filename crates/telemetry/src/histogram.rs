//! Log2-bucketed latency histogram.
//!
//! Values (nanoseconds by convention) land in bucket `⌊log2(v)⌋ + 1`, so each
//! bucket spans one power of two — at most 2× relative error on any reported
//! percentile, which is plenty for "did rule evaluation blow its budget".
//! Recording is three relaxed atomic ops; no allocation, no locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds exact zeros, buckets 1..=62 hold
/// `[2^(i-1), 2^i)`, bucket 63 holds everything from `2^62` up.
pub const BUCKETS: usize = 64;

/// Bucket a value falls into.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Smallest value belonging to bucket `i`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Largest value belonging to bucket `i` (reported as the percentile value).
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Concurrent histogram of durations.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one duration (nanoseconds by convention).
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Materialize the current contents. Not linearizable under concurrent
    /// `record`s, exact once writers are quiescent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
            count += *out;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("LatencyHistogram")
            .field("count", &s.count)
            .field("p99", &s.p99())
            .field("max", &s.max)
            .finish()
    }
}

/// Point-in-time copy of a [`LatencyHistogram`], with percentile math.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` ∈ \[0, 1\]: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, capped at the observed
    /// max. 0 when empty. Within 2× of the true quantile by construction.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Fold another snapshot into this one (for aggregating e.g. all
    /// per-rule histograms into one monitor-wide view).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's bounds round-trip through bucket_index.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i, "lower of {i}");
            if i < BUCKETS - 1 {
                assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper of {i}");
            }
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = LatencyHistogram::new();
        // 100 samples: 90 × 100ns, 9 × 10_000ns, 1 × 1_000_000ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        // p50 and p90 land in 100's bucket [64,128), p95+p99 in 10_000's
        // bucket [8192,16384), p100 in the max's.
        assert_eq!(s.p50(), 127);
        assert_eq!(s.percentile(0.90), 127);
        assert_eq!(s.p95(), 16_383);
        assert_eq!(s.p99(), 16_383);
        assert_eq!(s.percentile(1.0), 1_000_000);
    }

    #[test]
    fn merge_is_additive() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(10);
        a.record(500);
        b.record(100_000);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 100_510);
        assert_eq!(m.max, 100_000);
        assert_eq!(m.percentile(1.0), 100_000);
    }

    proptest! {
        #[test]
        fn bucket_index_orders_and_bounds(v in any::<u64>()) {
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            prop_assert!(bucket_lower_bound(i) <= v);
            prop_assert!(v <= bucket_upper_bound(i));
        }

        #[test]
        fn percentile_is_monotone_and_bounded(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        ) {
            let h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let true_max = *values.iter().max().unwrap();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.max, true_max);
            // Monotone in q, and never above the observed max.
            let mut prev = 0u64;
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let p = s.percentile(q);
                prop_assert!(p >= prev);
                prop_assert!(p <= true_max);
                prev = p;
            }
            // The reported quantile is within one log2 bucket of the true
            // quantile: true_q <= reported (upper bound of true_q's bucket,
            // modulo the max cap which only tightens it).
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.95, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
                let true_q = sorted[rank - 1];
                prop_assert!(s.percentile(q) >= true_q);
            }
        }
    }
}
