//! Sharded atomic counter: uncontended increments, summing reads.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of independent shards. Threads are assigned round-robin, so up to
/// this many writers increment without sharing a cache line.
const SHARDS: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Shard index of the current thread, assigned on first use.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// One counter shard, padded to a cache line so neighbouring shards of the
/// same counter never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// A monotonically increasing counter optimised for concurrent writers.
///
/// `add` touches only the calling thread's shard; `get` sums all shards. The
/// sum is not a linearizable snapshot under concurrent writes (like any
/// striped counter), but is exact once writers are quiescent — which is when
/// telemetry snapshots are taken.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [Shard; SHARDS],
}

impl ShardedCounter {
    pub fn new() -> ShardedCounter {
        ShardedCounter::default()
    }

    pub fn add(&self, n: u64) {
        let shard = MY_SHARD.with(|s| *s);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_counts() {
        let c = ShardedCounter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let c = Arc::new(ShardedCounter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
