//! Bounded ring of recent rule firings ("flight recorder").
//!
//! When a test fails or a cancel storm trips rules faster than anyone can
//! watch, the question is always "what were the last things the monitor did?"
//! The recorder keeps the answer: a fixed-capacity ring of [`FlightRecord`]s,
//! oldest evicted first, with a monotone sequence number so wraparound is
//! visible in the output. The depth is adjustable at runtime
//! ([`FlightRecorder::set_capacity`]) — deeper for an incident window,
//! shallower to shed memory — and records carry the active trace ID so they
//! cross-link with the causal traces of `sqlcm-core::trace`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorded rule evaluation that fired (or errored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotone sequence number across the recorder's lifetime; gaps in a
    /// snapshot mean records were evicted, not lost.
    pub seq: u64,
    /// Triggering event, e.g. `"Query.Commit"`.
    pub event: String,
    /// Rule name.
    pub rule: String,
    /// Condition outcome (false only for recorded condition errors).
    pub fired: bool,
    /// Actions executed.
    pub actions: u32,
    /// Condition/action errors encountered.
    pub errors: u32,
    /// Whole evaluation (condition + actions), nanoseconds.
    pub duration_nanos: u64,
    /// Causal-trace ID active when the evaluation ran (0 = not traced), so
    /// recorder entries cross-link with `Sqlcm::traces()` snapshots.
    pub trace_id: u64,
}

struct Ring {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<FlightRecord>,
}

/// Thread-safe ring of [`FlightRecord`]s with a runtime-adjustable capacity.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring {
                capacity,
                next_seq: 0,
                buf: VecDeque::with_capacity(capacity),
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.ring.lock().unwrap().capacity
    }

    /// Resize the ring in place (clamped to at least 1). Shrinking evicts the
    /// oldest records immediately; growing keeps everything and simply allows
    /// more before eviction resumes.
    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = self.ring.lock().unwrap();
        ring.capacity = capacity.max(1);
        while ring.buf.len() > ring.capacity {
            ring.buf.pop_front();
        }
    }

    /// Append a record, evicting the oldest at capacity. The record's `seq`
    /// is assigned by the recorder; the total ever recorded is returned.
    pub fn record(&self, mut rec: FlightRecord) -> u64 {
        let mut ring = self.ring.lock().unwrap();
        rec.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(rec);
        ring.next_seq
    }

    /// Records ever appended (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().unwrap().next_seq
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current contents, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.ring.lock().unwrap().buf.iter().cloned().collect()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("total_recorded", &self.total_recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rule: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            event: "Query.Commit".into(),
            rule: rule.into(),
            fired: true,
            actions: 1,
            errors: 0,
            duration_nanos: 42,
            trace_id: 0,
        }
    }

    #[test]
    fn keeps_insertion_order_below_capacity() {
        let r = FlightRecorder::new(4);
        r.record(rec("a"));
        r.record(rec("b"));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].rule, "a");
        assert_eq!(snap[1].rule, "b");
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
    }

    #[test]
    fn wraparound_evicts_oldest_and_keeps_seq() {
        let r = FlightRecorder::new(3);
        for name in ["a", "b", "c", "d", "e"] {
            r.record(rec(name));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 5);
        let snap = r.snapshot();
        let rules: Vec<&str> = snap.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(rules, ["c", "d", "e"]);
        let seqs: Vec<u64> = snap.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, [2, 3, 4], "sequence numbers survive eviction");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(rec("a"));
        r.record(rec("b"));
        assert_eq!(r.snapshot()[0].rule, "b");
    }

    #[test]
    fn shrinking_capacity_evicts_oldest_immediately() {
        let r = FlightRecorder::new(8);
        for name in ["a", "b", "c", "d", "e"] {
            r.record(rec(name));
        }
        r.set_capacity(2);
        assert_eq!(r.capacity(), 2);
        let rules: Vec<String> = r.snapshot().into_iter().map(|x| x.rule).collect();
        assert_eq!(rules, ["d", "e"]);
        // Seq continuity and the total are unaffected by resizing.
        assert_eq!(r.total_recorded(), 5);
        r.record(rec("f"));
        assert_eq!(r.snapshot().last().unwrap().seq, 5);
    }

    #[test]
    fn growing_capacity_keeps_records_and_raises_the_bound() {
        let r = FlightRecorder::new(2);
        r.record(rec("a"));
        r.record(rec("b"));
        r.set_capacity(4);
        r.record(rec("c"));
        r.record(rec("d"));
        assert_eq!(r.len(), 4, "no eviction until the new bound");
        r.record(rec("e"));
        assert_eq!(r.len(), 4);
        assert_eq!(r.snapshot()[0].rule, "b");
        // Clamped like the constructor.
        r.set_capacity(0);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn trace_id_rides_along() {
        let r = FlightRecorder::new(2);
        let mut traced = rec("a");
        traced.trace_id = 77;
        r.record(traced);
        assert_eq!(r.snapshot()[0].trace_id, 77);
    }

    #[test]
    fn concurrent_records_never_exceed_capacity() {
        let r = std::sync::Arc::new(FlightRecorder::new(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.record(rec("t"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.total_recorded(), 4000);
        // Snapshot seqs are strictly increasing.
        let snap = r.snapshot();
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
