//! Bounded ring of recent rule firings ("flight recorder").
//!
//! When a test fails or a cancel storm trips rules faster than anyone can
//! watch, the question is always "what were the last things the monitor did?"
//! The recorder keeps the answer: a fixed-capacity ring of [`FlightRecord`]s,
//! oldest evicted first, with a monotone sequence number so wraparound is
//! visible in the output.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorded rule evaluation that fired (or errored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotone sequence number across the recorder's lifetime; gaps in a
    /// snapshot mean records were evicted, not lost.
    pub seq: u64,
    /// Triggering event, e.g. `"Query.Commit"`.
    pub event: String,
    /// Rule name.
    pub rule: String,
    /// Condition outcome (false only for recorded condition errors).
    pub fired: bool,
    /// Actions executed.
    pub actions: u32,
    /// Condition/action errors encountered.
    pub errors: u32,
    /// Whole evaluation (condition + actions), nanoseconds.
    pub duration_nanos: u64,
}

struct Ring {
    next_seq: u64,
    buf: VecDeque<FlightRecord>,
}

/// Fixed-capacity, thread-safe ring of [`FlightRecord`]s.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                next_seq: 0,
                buf: VecDeque::with_capacity(capacity.max(1)),
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a record, evicting the oldest at capacity. The record's `seq`
    /// is assigned by the recorder; the total ever recorded is returned.
    pub fn record(&self, mut rec: FlightRecord) -> u64 {
        let mut ring = self.ring.lock().unwrap();
        rec.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(rec);
        ring.next_seq
    }

    /// Records ever appended (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().unwrap().next_seq
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current contents, oldest first.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.ring.lock().unwrap().buf.iter().cloned().collect()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("total_recorded", &self.total_recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rule: &str) -> FlightRecord {
        FlightRecord {
            seq: 0,
            event: "Query.Commit".into(),
            rule: rule.into(),
            fired: true,
            actions: 1,
            errors: 0,
            duration_nanos: 42,
        }
    }

    #[test]
    fn keeps_insertion_order_below_capacity() {
        let r = FlightRecorder::new(4);
        r.record(rec("a"));
        r.record(rec("b"));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].rule, "a");
        assert_eq!(snap[1].rule, "b");
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
    }

    #[test]
    fn wraparound_evicts_oldest_and_keeps_seq() {
        let r = FlightRecorder::new(3);
        for name in ["a", "b", "c", "d", "e"] {
            r.record(rec(name));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_recorded(), 5);
        let snap = r.snapshot();
        let rules: Vec<&str> = snap.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(rules, ["c", "d", "e"]);
        let seqs: Vec<u64> = snap.iter().map(|x| x.seq).collect();
        assert_eq!(seqs, [2, 3, 4], "sequence numbers survive eviction");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(rec("a"));
        r.record(rec("b"));
        assert_eq!(r.snapshot()[0].rule, "b");
    }

    #[test]
    fn concurrent_records_never_exceed_capacity() {
        let r = std::sync::Arc::new(FlightRecorder::new(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.record(rec("t"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.total_recorded(), 4000);
        // Snapshot seqs are strictly increasing.
        let snap = r.snapshot();
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
