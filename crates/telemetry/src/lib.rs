//! Self-telemetry primitives for the SQLCM monitor.
//!
//! The paper's headline claim (§7) is that in-engine synchronous monitoring
//! costs "typically less than 5%" — which means the monitor's own bookkeeping
//! must be cheaper still. Everything in this crate is built for the probe hot
//! path:
//!
//! * [`ShardedCounter`] — a per-thread-sharded atomic counter: increments hit
//!   a thread-local shard (no contended cache line), reads sum the shards.
//! * [`LatencyHistogram`] — 64 log2-bucketed atomic buckets with running sum
//!   and max; [`HistogramSnapshot`] derives p50/p95/p99 from the buckets.
//! * [`Stopwatch`] / [`TimerGuard`] — `std::time::Instant`-based timing with
//!   an RAII guard that records into a histogram on drop.
//! * [`FlightRecorder`] — a bounded ring of the last N rule firings, kept so
//!   a test failure or cancel storm can be reconstructed after the fact.
//! * [`BoundedRing`] / [`BufferPool`] — drop-oldest retention and span-buffer
//!   recycling for the causal-trace subsystem (`sqlcm-core::trace`): touched
//!   once per completed sampled trace, never on the per-event path.
//!
//! No dependencies, std only: the crate must be linkable from every layer
//! (engine, core, benches) without widening the build.

mod counter;
mod histogram;
mod recorder;
mod ring;
mod timer;

pub use counter::ShardedCounter;
pub use histogram::{bucket_index, bucket_lower_bound, bucket_upper_bound};
pub use histogram::{HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use recorder::{FlightRecord, FlightRecorder};
pub use ring::{BoundedRing, BufferPool};
pub use timer::{Stopwatch, TimerGuard};
