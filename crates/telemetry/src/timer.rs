//! Wall-clock timing for the probe path.

use crate::LatencyHistogram;
use std::time::Instant;

/// A started `Instant`, read in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    pub fn elapsed_nanos(&self) -> u64 {
        // Saturating: a u64 of nanoseconds covers ~584 years.
        self.0.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// RAII guard that records the elapsed time into a histogram when dropped —
/// covers early returns in the guarded scope for free.
#[derive(Debug)]
pub struct TimerGuard<'a> {
    hist: &'a LatencyHistogram,
    sw: Stopwatch,
}

impl LatencyHistogram {
    /// Start timing; the elapsed nanoseconds are recorded when the returned
    /// guard drops.
    pub fn time(&self) -> TimerGuard<'_> {
        TimerGuard {
            hist: self,
            sw: Stopwatch::start(),
        }
    }
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        self.hist.record(self.sw.elapsed_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let h = LatencyHistogram::new();
        {
            let _g = h.time();
            std::hint::black_box(17u64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max > 0, "a real Instant elapsed");
    }

    #[test]
    fn guard_records_on_early_return() {
        fn inner(h: &LatencyHistogram, bail: bool) -> u32 {
            let _g = h.time();
            if bail {
                return 1;
            }
            2
        }
        let h = LatencyHistogram::new();
        inner(&h, true);
        inner(&h, false);
        assert_eq!(h.snapshot().count, 2);
    }
}
