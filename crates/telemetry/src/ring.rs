//! Generic bounded ring (drop-oldest) and buffer pool — the storage
//! primitives behind the causal-trace subsystem in `sqlcm-core::trace`.
//!
//! * [`BoundedRing`] keeps the most recent N items, evicting the oldest on
//!   overflow and *returning* the evicted item to the caller so its backing
//!   buffers can be recycled instead of freed.
//! * [`BufferPool`] recycles `Vec<T>` backing storage across uses (bounded,
//!   so a burst cannot hoard memory forever).
//!
//! Both are touched once per *completed trace* — sampled, not per event — so
//! a short uncontended mutex is the right trade: the event hot path itself
//! never reaches these types (per-thread staging buffers are handed over
//! whole on trace completion), and the disabled path never even samples.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Fixed-capacity, thread-safe ring that drops the oldest item on overflow.
#[derive(Debug)]
pub struct BoundedRing<T> {
    capacity: usize,
    /// Items evicted by overflow since creation.
    dropped: AtomicU64,
    /// Items ever pushed (including later-evicted ones).
    total: AtomicU64,
    buf: Mutex<VecDeque<T>>,
}

impl<T> BoundedRing<T> {
    /// Capacity is clamped to at least 1.
    pub fn new(capacity: usize) -> BoundedRing<T> {
        let capacity = capacity.max(1);
        BoundedRing {
            capacity,
            dropped: AtomicU64::new(0),
            total: AtomicU64::new(0),
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an item; at capacity the oldest is evicted and returned so the
    /// caller can recycle its buffers.
    pub fn push(&self, item: T) -> Option<T> {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock().unwrap();
        let evicted = if buf.len() == self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            buf.pop_front()
        } else {
            None
        };
        buf.push_back(item);
        evicted
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted by overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Items ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Drain the ring, returning the contents oldest-first (for recycling).
    pub fn drain(&self) -> Vec<T> {
        self.buf.lock().unwrap().drain(..).collect()
    }
}

impl<T: Clone> BoundedRing<T> {
    /// Current contents, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }
}

/// Bounded pool of reusable `Vec<T>` buffers. `take` hands out a cleared
/// buffer (pooled capacity preserved); `put` returns one, dropping it when
/// the pool is full so a burst cannot hoard memory.
#[derive(Debug)]
pub struct BufferPool<T> {
    bound: usize,
    bufs: Mutex<Vec<Vec<T>>>,
}

impl<T> BufferPool<T> {
    pub fn new(bound: usize) -> BufferPool<T> {
        BufferPool {
            bound: bound.max(1),
            bufs: Mutex::new(Vec::new()),
        }
    }

    /// A cleared buffer, reusing pooled backing storage when available.
    pub fn take(&self) -> Vec<T> {
        self.bufs.lock().unwrap().pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Contents are cleared; the allocation is
    /// kept only while the pool is under its bound.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut bufs = self.bufs.lock().unwrap();
        if bufs.len() < self.bound {
            bufs.push(buf);
        }
    }

    /// Buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.bufs.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let ring: BoundedRing<u32> = BoundedRing::new(3);
        assert_eq!(ring.push(1), None);
        assert_eq!(ring.push(2), None);
        assert_eq!(ring.push(3), None);
        assert_eq!(ring.push(4), Some(1), "oldest comes back for recycling");
        assert_eq!(ring.push(5), Some(2));
        assert_eq!(ring.snapshot(), vec![3, 4, 5]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.total_pushed(), 5);
    }

    #[test]
    fn ring_zero_capacity_is_clamped() {
        let ring: BoundedRing<u8> = BoundedRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1);
        assert_eq!(ring.push(2), Some(1));
        assert_eq!(ring.snapshot(), vec![2]);
    }

    #[test]
    fn ring_drain_empties_and_preserves_order() {
        let ring: BoundedRing<u32> = BoundedRing::new(4);
        for i in 0..4 {
            ring.push(i);
        }
        assert_eq!(ring.drain(), vec![0, 1, 2, 3]);
        assert!(ring.is_empty());
        // Drain does not count as drop.
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_concurrent_pushes_stay_bounded() {
        let ring = std::sync::Arc::new(BoundedRing::new(8));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.push(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.total_pushed(), 4000);
        assert_eq!(ring.dropped(), 4000 - 8);
    }

    #[test]
    fn pool_reuses_backing_storage_up_to_bound() {
        let pool: BufferPool<u64> = BufferPool::new(2);
        let mut a = pool.take();
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "backing storage is reused");
        // Over-filling the pool drops the excess buffer.
        pool.put(Vec::new());
        pool.put(Vec::new());
        pool.put(Vec::new());
        assert_eq!(pool.pooled(), 2);
    }
}
