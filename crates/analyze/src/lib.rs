//! Static analysis of SQLCM ECA rules and LAT specifications.
//!
//! The monitoring framework of the paper deliberately keeps its rule language
//! small so that evaluation is cheap (§2.1). The flip side is that a rule
//! that is *well-formed* can still be *useless* — referencing a class the
//! event never supplies, comparing a COUNT with a string, or probing a LAT
//! whose grouping key can never be built from the objects in scope. At
//! runtime those rules silently never fire (missing row ⇒ false, missing
//! class ⇒ skip), which is exactly the kind of bug a monitoring system should
//! not have: the alarm that cannot ring.
//!
//! This crate analyzes rules **at registration time** against a typed schema
//! universe ([`schema::SchemaUniverse`]) and reports [`Diagnostic`]s with
//! stable codes:
//!
//! | code | severity | check |
//! |------|----------|-------|
//! | E001 | error    | unknown LAT / attribute / column reference ([`typeck`]) |
//! | E002 | error    | condition type mismatch ([`typeck`]) |
//! | E003 | error    | LAT grouping columns unmatched in scope — condition statically false ([`joinability`]) |
//! | E004 | error    | cascade cycle through eviction/timer events ([`depgraph`]) |
//! | E005 | error    | invalid LAT shard count ([`schema`]) |
//! | E006 | error    | condition provably unsatisfiable under attribute intervals ([`intervals`]) |
//! | W101 | warning  | dead rule: class never in scope ([`joinability`]) |
//! | W102 | warning  | duplicate rule: same event + identical condition ([`depgraph`]) |
//! | W103 | warning  | condition provably tautological ([`intervals`]) |
//! | W104 | warning  | division by a possibly-zero/NULL aggregate ([`intervals`]) |
//! | W105 | warning  | identical predicate duplicated across same-event rules ([`depgraph`]) |
//! | W201 | warning  | estimated per-firing cost above threshold ([`cost`]) |
//! | W202 | warning  | over-sharded LAT ([`schema`]) |
//! | W203 | warning  | condition reads a LAT column no rule's Insert feeds ([`effects`]) |
//! | W204 | warning  | unconditional external action on a hot event class ([`cost`]) |
//! | W301 | warning  | adjacent same-event rules are order-sensitive ([`confluence`]) |
//! | W302 | warning  | one event can trigger more evaluations than the cascade threshold ([`confluence`]) |
//!
//! Beyond lints, the [`effects`] pass exports machine-consumable
//! [`RuleEffects`] summaries (column-level read/write sets with an
//! interference relation); `sqlcm-core`'s dispatch-plan compiler uses them to
//! invalidate hoisted LAT row snapshots only when an interposed rule's write
//! set actually intersects the readers' read set.
//!
//! The crate is deliberately independent of `sqlcm-core` (core calls *into*
//! the analyzer); rules and LAT specs arrive as a small IR ([`RuleIr`],
//! [`LatIr`]) that core's `analysis` module builds from its own types.

pub mod confluence;
pub mod cost;
pub mod depgraph;
pub mod diagnostics;
pub mod effects;
pub mod intervals;
pub mod joinability;
pub mod schema;
pub mod typeck;

pub use cost::{rule_indexability, Indexability, Residual, DEFAULT_COST_THRESHOLD};
pub use diagnostics::{has_errors, Code, Diagnostic, Severity};
pub use effects::{rule_effects, LatWriteEffect, RuleEffects};
pub use schema::{ClassSchema, LatColumn, LatSchema, SchemaUniverse};

/// Default for [`Analyzer::cascade_threshold`]: the worst-case number of rule
/// evaluations one event may transitively trigger before W302 fires.
pub const DEFAULT_CASCADE_THRESHOLD: usize = 64;

use sqlcm_sql::{Expr, ExprIr};
use std::fmt;

// ------------------------------------------------------------ IR

/// A `Class.Attribute` reference in a LAT spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrIr {
    pub class: String,
    pub attr: String,
}

/// Aggregate functions, mirroring `sqlcm-core`'s `LatAggFunc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFuncIr {
    Count,
    Sum,
    Avg,
    StdDev,
    Min,
    Max,
    First,
    Last,
}

/// One grouping column of a LAT spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupColumnIr {
    pub source: AttrIr,
    pub alias: String,
}

/// One aggregate column of a LAT spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggColumnIr {
    pub func: AggFuncIr,
    /// `None` only for `COUNT(*)`.
    pub source: Option<AttrIr>,
    pub alias: String,
    /// True when the aggregate has an aging (moving-window) spec.
    pub aging: bool,
}

/// Mirror of `sqlcm-core`'s shard-count ceiling (kept in sync by a test in
/// core's `analysis` module).
pub const MAX_LAT_SHARDS: usize = 4096;

/// Analyzer view of a LAT specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatIr {
    pub name: String,
    pub group_by: Vec<GroupColumnIr>,
    pub aggregates: Vec<AggColumnIr>,
    /// True when the LAT has a size bound and can therefore evict rows (and
    /// raise `LatEviction` events).
    pub bounded: bool,
    /// Row bound, when one is set (drives the shard-vs-bound lint).
    pub max_rows: Option<usize>,
    /// Explicit shard-count override (`None` = runtime default).
    pub shards: Option<usize>,
}

/// Analyzer view of a rule's triggering event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventIr {
    /// Event family, e.g. `"QueryCommit"`, `"TimerAlarm"`, `"LatEviction"`.
    pub kind: String,
    /// Timer or LAT name for the parameterized events.
    pub arg: Option<String>,
    /// Class names guaranteed present in the event payload.
    pub payload: Vec<String>,
}

impl EventIr {
    /// True when this event is the `kind(arg)` instance (names matched
    /// case-insensitively, as LAT names are at runtime).
    pub fn is(&self, kind: &str, arg: &str) -> bool {
        self.kind == kind
            && self
                .arg
                .as_deref()
                .is_some_and(|a| a.eq_ignore_ascii_case(arg))
    }

    /// Same event instance as `other`?
    pub fn same_as(&self, other: &EventIr) -> bool {
        self.kind == other.kind
            && match (&self.arg, &other.arg) {
                (None, None) => true,
                (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                _ => false,
            }
    }
}

impl fmt::Display for EventIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}({a})", self.kind),
            None => f.write_str(&self.kind),
        }
    }
}

/// Analyzer view of a rule action — just the parts the checks need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionIr {
    Insert { lat: String },
    Reset { lat: String },
    PersistLat { lat: String, table: String },
    PersistObject { class: String, table: String },
    SetTimer { timer: String },
    Cancel { class: String },
    SendMail,
    RunExternal,
}

impl ActionIr {
    /// The LAT this action targets, if any.
    pub fn lat(&self) -> Option<&str> {
        match self {
            ActionIr::Insert { lat }
            | ActionIr::Reset { lat }
            | ActionIr::PersistLat { lat, .. } => Some(lat),
            _ => None,
        }
    }

    fn describe(&self) -> String {
        match self {
            ActionIr::Insert { lat } => format!("Insert({lat})"),
            ActionIr::Reset { lat } => format!("Reset({lat})"),
            ActionIr::PersistLat { lat, table } => format!("PersistLat({lat} -> {table})"),
            ActionIr::PersistObject { class, table } => {
                format!("PersistObject({class} -> {table})")
            }
            ActionIr::SetTimer { timer } => format!("SetTimer({timer})"),
            ActionIr::Cancel { class } => format!("Cancel({class})"),
            ActionIr::SendMail => "SendMail".into(),
            ActionIr::RunExternal => "RunExternal".into(),
        }
    }
}

/// Analyzer view of an ECA rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleIr {
    pub name: String,
    pub event: EventIr,
    pub condition: Option<Expr>,
    pub actions: Vec<ActionIr>,
}

// ------------------------------------------------------ reference gathering

/// Qualifiers referenced by a condition, split the way the runtime splits
/// them: a qualifier naming a monitored class resolves to that class
/// (canonical spelling); anything else is assumed to be a LAT name (returned
/// as written, deduplicated case-insensitively).
///
/// Reads the lowered IR's reference pool directly — the pool already holds
/// every qualified column exactly once, in first-appearance order, so no
/// tree walk is needed.
pub(crate) fn expr_refs(universe: &SchemaUniverse, ir: &ExprIr) -> (Vec<String>, Vec<String>) {
    let mut classes: Vec<String> = Vec::new();
    let mut lats: Vec<String> = Vec::new();
    for (qualifier, _) in &ir.refs {
        let Some(q) = qualifier else { continue };
        match universe.class(q) {
            Some(c) => {
                if !classes.iter().any(|x| x == &c.name) {
                    classes.push(c.name.clone());
                }
            }
            None => {
                if !lats.iter().any(|l| l.eq_ignore_ascii_case(q)) {
                    lats.push(q.clone());
                }
            }
        }
    }
    (classes, lats)
}

// ------------------------------------------------------------ analyzer

/// Stateful analyzer: a schema universe plus the rules admitted so far.
///
/// Feed it LATs ([`check_lat`](Analyzer::check_lat)) and rules
/// ([`check_rule`](Analyzer::check_rule)) in registration order; each call
/// returns the diagnostics for that item, and items are only admitted into
/// the analyzer's state when they produced no error-severity diagnostics
/// (mirroring a registration gate that denies on errors).
#[derive(Debug, Clone)]
pub struct Analyzer {
    universe: SchemaUniverse,
    rules: Vec<RuleIr>,
    /// Per-firing cost above which [`Code::W201`] fires.
    pub cost_threshold: u32,
    /// Worst-case transitive evaluations per event above which
    /// [`Code::W302`] fires.
    pub cascade_threshold: usize,
}

impl Default for Analyzer {
    fn default() -> Analyzer {
        Analyzer::new()
    }
}

impl Analyzer {
    pub fn new() -> Analyzer {
        Analyzer {
            universe: SchemaUniverse::builtin(),
            rules: Vec::new(),
            cost_threshold: DEFAULT_COST_THRESHOLD,
            cascade_threshold: DEFAULT_CASCADE_THRESHOLD,
        }
    }

    pub fn universe(&self) -> &SchemaUniverse {
        &self.universe
    }

    /// Rules admitted so far.
    pub fn rules(&self) -> &[RuleIr] {
        &self.rules
    }

    /// Check a LAT spec; admits its schema when clean.
    pub fn check_lat(&mut self, lat: &LatIr) -> Vec<Diagnostic> {
        self.universe.register_lat(lat)
    }

    /// Admit a LAT or rule without checking — used to seed the analyzer with
    /// items that were already validated at their own registration time.
    pub fn seed_rule(&mut self, rule: RuleIr) {
        self.rules.push(rule);
    }

    /// Run every check on one rule against the current universe and the
    /// rules admitted so far; admits the rule when no error was found.
    pub fn check_rule(&mut self, rule: &RuleIr) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        // Lower the condition AST once; every expression pass below consumes
        // this shared flat IR instead of re-walking the tree.
        let ir = rule.condition.as_ref().map(ExprIr::lower);
        if let Some(ir) = &ir {
            typeck::check_condition(&self.universe, &rule.name, ir, &mut diags);
            // Interval reasoning assumes well-typed operands; on a type error
            // the E002 already explains everything the intervals would.
            if !has_errors(&diags) {
                intervals::check_condition(&self.universe, &rule.name, ir, &mut diags);
            }
        }
        self.check_action_targets(rule, &mut diags);
        joinability::check_rule(&self.universe, rule, &mut diags);
        depgraph::check_duplicates(&self.rules, rule, &mut diags);
        depgraph::check_shared_predicates(&self.rules, rule, ir.as_ref(), &mut diags);
        depgraph::check_cascades(&self.universe, &self.rules, rule, &mut diags);
        cost::check_rule(&self.universe, rule, self.cost_threshold, &mut diags);
        cost::check_unconditional_external(rule, &mut diags);
        cost::check_unindexable(&self.universe, rule, &mut diags);
        // Effect/confluence lints describe how the rule will behave once
        // admitted; a rule an error already denies never runs, so piling
        // style warnings on top of the denial is noise.
        if !has_errors(&diags) {
            effects::check_unfed_reads(&self.universe, &self.rules, rule, &mut diags);
            confluence::check_order(&self.universe, &self.rules, rule, &mut diags);
            confluence::check_amplification(
                &self.universe,
                &self.rules,
                rule,
                self.cascade_threshold,
                &mut diags,
            );
        }
        if !has_errors(&diags) {
            self.rules.push(rule.clone());
        }
        diags
    }

    /// Column-level read/write summary of `rule` against the current
    /// universe. Pure: does not admit the rule or touch analyzer state.
    pub fn effects_of(&self, rule: &RuleIr) -> RuleEffects {
        effects::rule_effects(&self.universe, rule)
    }

    /// Longest cascade chain the admitted ruleset can produce, in cascaded
    /// events (root events are depth 0). Runtime causal traces record the
    /// same measure, so their observed depths must stay within this bound —
    /// the trace-vs-analyzer cross-check. See
    /// [`depgraph::max_cascade_depth`].
    pub fn max_cascade_depth(&self) -> usize {
        depgraph::max_cascade_depth(&self.universe, &self.rules)
    }

    /// E001 for actions that target a LAT the universe does not know.
    fn check_action_targets(&self, rule: &RuleIr, diags: &mut Vec<Diagnostic>) {
        for action in &rule.actions {
            if let Some(lat) = action.lat() {
                if self.universe.lat(lat).is_none() {
                    diags.push(
                        Diagnostic::new(
                            Code::E001,
                            &rule.name,
                            format!("action targets unknown LAT `{lat}`"),
                        )
                        .with_span(action.describe())
                        .with_help("define the LAT before registering rules that use it"),
                    );
                }
            }
        }
    }

    /// Lint a whole ruleset in registration order: every LAT first, then
    /// every rule. Returns all diagnostics.
    pub fn check_ruleset(lats: &[LatIr], rules: &[RuleIr]) -> Vec<Diagnostic> {
        let mut analyzer = Analyzer::new();
        let mut diags = Vec::new();
        for lat in lats {
            diags.extend(analyzer.check_lat(lat));
        }
        for rule in rules {
            diags.extend(analyzer.check_rule(rule));
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_rule_is_admitted() {
        let mut a = Analyzer::new();
        let rule = RuleIr {
            name: "r".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Query.Duration > 1.5").unwrap()),
            actions: vec![ActionIr::SendMail],
        };
        let diags = a.check_rule(&rule);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(a.rules().len(), 1);
    }

    #[test]
    fn erroneous_rule_is_not_admitted() {
        let mut a = Analyzer::new();
        let rule = RuleIr {
            name: "r".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Nope_LAT.x > 1").unwrap()),
            actions: vec![],
        };
        let diags = a.check_rule(&rule);
        assert!(has_errors(&diags));
        assert!(a.rules().is_empty());
    }
}
