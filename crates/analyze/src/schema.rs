//! The typed schema universe the analyzer checks references against.
//!
//! Two kinds of "relations" can appear in a rule condition:
//!
//! * **monitored object classes** (`Query`, `Transaction`, …) — fixed schemas
//!   mirroring `sqlcm-core`'s object constructors (a sync test in `sqlcm-core`
//!   cross-checks the attribute names against the runtime tables);
//! * **LATs** — schemas derived from the registered `LatSpec`s, with column
//!   types inferred from the aggregate function and its source attribute.
//!
//! A class is *iterable* when the rule engine can enumerate live instances for
//! it outside an event payload (active queries, blocked pairs, catalog
//! tables). Non-iterable classes are only in scope when the event payload
//! carries them — the joinability and dead-rule checks key off this flag.

use std::collections::HashMap;

use sqlcm_common::DataType;

use crate::diagnostics::{Code, Diagnostic};
use crate::{AggFuncIr, LatIr};

/// Schema of one monitored object class.
#[derive(Debug, Clone)]
pub struct ClassSchema {
    pub name: String,
    /// Whether the rule engine can iterate live instances of this class when
    /// it is referenced outside the event payload.
    pub iterable: bool,
    pub attrs: Vec<(String, DataType)>,
}

impl ClassSchema {
    fn new(name: &str, iterable: bool, attrs: &[(&str, DataType)]) -> ClassSchema {
        ClassSchema {
            name: name.to_string(),
            iterable,
            attrs: attrs.iter().map(|(a, t)| (a.to_string(), *t)).collect(),
        }
    }

    /// Case-insensitive attribute lookup.
    pub fn attr_type(&self, attr: &str) -> Option<DataType> {
        self.attrs
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(attr))
            .map(|(_, t)| *t)
    }

    /// Canonical spelling of an attribute, matched case-insensitively.
    pub fn canonical_attr(&self, attr: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(a, _)| a.eq_ignore_ascii_case(attr))
            .map(|(a, _)| a.as_str())
    }
}

/// One column of a LAT schema.
#[derive(Debug, Clone)]
pub struct LatColumn {
    pub name: String,
    /// `None` when the type could not be inferred (bad source reference).
    pub ty: Option<DataType>,
    /// True for aging (moving-window) aggregates.
    pub aging: bool,
    /// True for grouping columns.
    pub group: bool,
    /// Aggregate function for aggregate columns; `None` for grouping columns.
    pub func: Option<AggFuncIr>,
    /// `Class.Attribute` the column is computed from — the grouping source
    /// for group columns, the aggregate source for aggregate columns
    /// (`None` for `COUNT(*)`).
    pub source: Option<(String, String)>,
}

/// Schema of one registered LAT.
#[derive(Debug, Clone)]
pub struct LatSchema {
    pub name: String,
    /// Canonical name of the class the grouping columns come from; lookups
    /// probe the LAT with the key built from an in-scope object of this class.
    pub source_class: String,
    pub columns: Vec<LatColumn>,
    /// Whether the LAT has a size bound (`max_rows`/`max_bytes`) — only
    /// bounded LATs evict rows and hence raise `LatEviction` events.
    pub bounded: bool,
    /// Number of aging aggregates (each adds block-ring maintenance cost).
    pub aging_aggregates: usize,
    /// Total number of aggregate columns.
    pub aggregate_count: usize,
}

impl LatSchema {
    /// Case-insensitive column lookup.
    pub fn column(&self, name: &str) -> Option<&LatColumn> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The grouping (key) columns.
    pub fn group_columns(&self) -> impl Iterator<Item = &LatColumn> {
        self.columns.iter().filter(|c| c.group)
    }

    /// The aggregate (non-key) columns.
    pub fn aggregate_columns(&self) -> impl Iterator<Item = &LatColumn> {
        self.columns.iter().filter(|c| !c.group)
    }
}

/// All relations a rule condition may reference.
#[derive(Debug, Clone)]
pub struct SchemaUniverse {
    classes: Vec<ClassSchema>,
    /// Keyed by lowercased LAT name (LAT names are case-insensitive at
    /// runtime).
    lats: HashMap<String, LatSchema>,
}

impl Default for SchemaUniverse {
    fn default() -> SchemaUniverse {
        SchemaUniverse::builtin()
    }
}

impl SchemaUniverse {
    /// The built-in monitored object classes of the SQLCM engine, with the
    /// attribute types produced by the object constructors.
    pub fn builtin() -> SchemaUniverse {
        use DataType::{Bool, Float, Int, Text, Timestamp};
        let query_attrs: [(&str, DataType); 17] = [
            ("ID", Int),
            ("Query_Text", Text),
            ("Logical_Signature", Int),
            ("Physical_Signature", Int),
            ("Start_Time", Timestamp),
            ("Duration", Float),
            ("Estimated_Cost", Float),
            ("Time_Blocked", Float),
            ("Times_Blocked", Int),
            ("Queries_Blocked", Int),
            ("Number_of_instances", Int),
            ("Query_Type", Text),
            ("User", Text),
            ("Application", Text),
            ("Session_ID", Int),
            ("Transaction_ID", Int),
            ("Procedure", Text),
        ];
        let block_attrs: Vec<(&str, DataType)> = query_attrs
            .iter()
            .copied()
            .chain([("Resource", Text), ("Wait_Time", Float)])
            .collect();
        let classes = vec![
            ClassSchema::new("Query", true, &query_attrs),
            ClassSchema::new("Blocker", true, &block_attrs),
            ClassSchema::new("Blocked", true, &block_attrs),
            ClassSchema::new(
                "Transaction",
                false,
                &[
                    ("ID", Int),
                    ("Start_Time", Timestamp),
                    ("Duration", Float),
                    ("Logical_Signature", Int),
                    ("Physical_Signature", Int),
                    ("Statements", Int),
                    ("User", Text),
                    ("Application", Text),
                    ("Session_ID", Int),
                ],
            ),
            ClassSchema::new(
                "Session",
                false,
                &[
                    ("Session_ID", Int),
                    ("User", Text),
                    ("Application", Text),
                    ("Success", Bool),
                ],
            ),
            ClassSchema::new(
                "Timer",
                false,
                &[
                    ("Name", Text),
                    ("Time", Timestamp),
                    ("Alarms_Remaining", Int),
                ],
            ),
            ClassSchema::new(
                "Table",
                true,
                &[
                    ("Name", Text),
                    ("Row_Count", Int),
                    ("Columns", Int),
                    ("Indexes", Int),
                    ("Clustered", Bool),
                ],
            ),
            // SQLCM's own health snapshot, dispatched by the self-monitoring
            // bridge on MonitorTick. Latencies are seconds, like every other
            // duration attribute.
            ClassSchema::new(
                "Monitor",
                false,
                &[
                    ("Name", Text),
                    ("Events", Int),
                    ("Evaluations", Int),
                    ("Fires", Int),
                    ("Actions", Int),
                    ("Action_Errors", Int),
                    ("Eval_P50", Float),
                    ("Eval_P95", Float),
                    ("Eval_P99", Float),
                    ("Eval_Max", Float),
                    ("Probe_P99", Float),
                    ("Lat_Memory", Int),
                    ("Rule_Count", Int),
                    ("Lat_Count", Int),
                    ("Overload_Stage", Int),
                    ("Quarantined_Rules", Int),
                    ("Deferred_Depth", Int),
                ],
            ),
        ];
        SchemaUniverse {
            classes,
            lats: HashMap::new(),
        }
    }

    /// Case-insensitive class lookup. LAT names never resolve here (mirroring
    /// the runtime, where `ClassName::parse` rejects them).
    pub fn class(&self, name: &str) -> Option<&ClassSchema> {
        self.classes
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn classes(&self) -> impl Iterator<Item = &ClassSchema> {
        self.classes.iter()
    }

    /// Case-insensitive LAT lookup.
    pub fn lat(&self, name: &str) -> Option<&LatSchema> {
        self.lats.get(&name.to_ascii_lowercase())
    }

    pub fn lats(&self) -> impl Iterator<Item = &LatSchema> {
        self.lats.values()
    }

    /// Derive a [`LatSchema`] from a LAT spec and register it. Reports `E001`
    /// for grouping or aggregate sources that name an unknown class or
    /// attribute, `E005`/`W202` for shard-count problems; the schema is only
    /// registered when the spec has no error-severity diagnostics (a denied
    /// `define_lat` must not leave a half-known LAT behind).
    pub fn register_lat(&mut self, ir: &LatIr) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let mut columns = Vec::new();
        let mut source_class: Option<String> = None;

        if let Some(n) = ir.shards {
            if n == 0 || n > crate::MAX_LAT_SHARDS {
                diags.push(
                    Diagnostic::new(
                        Code::E005,
                        &ir.name,
                        format!("shard count {n} is outside 1..={}", crate::MAX_LAT_SHARDS),
                    )
                    .with_span(format!("shards({n})"))
                    .with_help("pick a power of two near the expected probe concurrency"),
                );
            } else if ir.max_rows.is_some_and(|m| n > m) {
                diags.push(
                    Diagnostic::new(
                        Code::W202,
                        &ir.name,
                        format!(
                            "{n} shards for a LAT bounded to {} rows — most shards \
                             can never be occupied",
                            ir.max_rows.unwrap_or(0)
                        ),
                    )
                    .with_span(format!("shards({n})"))
                    .with_help("use at most max_rows shards (or raise the row bound)"),
                );
            }
        }

        for g in &ir.group_by {
            let ty = self.resolve_attr(&ir.name, &g.source.class, &g.source.attr, &mut diags);
            if source_class.is_none() {
                if let Some(c) = self.class(&g.source.class) {
                    source_class = Some(c.name.clone());
                }
            }
            columns.push(LatColumn {
                name: g.alias.clone(),
                ty,
                aging: false,
                group: true,
                func: None,
                source: Some((g.source.class.clone(), g.source.attr.clone())),
            });
        }

        let mut aging_aggregates = 0;
        for a in &ir.aggregates {
            if a.aging {
                aging_aggregates += 1;
            }
            let source_ty = match &a.source {
                Some(s) => self.resolve_attr(&ir.name, &s.class, &s.attr, &mut diags),
                None => None,
            };
            let ty = match a.func {
                AggFuncIr::Count => Some(DataType::Int),
                AggFuncIr::Sum | AggFuncIr::Avg | AggFuncIr::StdDev => Some(DataType::Float),
                AggFuncIr::Min | AggFuncIr::Max | AggFuncIr::First | AggFuncIr::Last => source_ty,
            };
            columns.push(LatColumn {
                name: a.alias.clone(),
                ty,
                aging: a.aging,
                group: false,
                func: Some(a.func),
                source: a.source.as_ref().map(|s| (s.class.clone(), s.attr.clone())),
            });
        }

        if !crate::diagnostics::has_errors(&diags) {
            self.lats.insert(
                ir.name.to_ascii_lowercase(),
                LatSchema {
                    name: ir.name.clone(),
                    source_class: source_class.unwrap_or_default(),
                    columns,
                    bounded: ir.bounded,
                    aging_aggregates,
                    aggregate_count: ir.aggregates.len(),
                },
            );
        }
        diags
    }

    fn resolve_attr(
        &self,
        lat: &str,
        class: &str,
        attr: &str,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<DataType> {
        let Some(schema) = self.class(class) else {
            diags.push(
                Diagnostic::new(
                    Code::E001,
                    lat,
                    format!("unknown monitored class `{class}`"),
                )
                .with_span(format!("{class}.{attr}"))
                .with_help(known_classes_help(self)),
            );
            return None;
        };
        match schema.attr_type(attr) {
            Some(t) => Some(t),
            None => {
                diags.push(
                    Diagnostic::new(
                        Code::E001,
                        lat,
                        format!("class {} has no attribute `{attr}`", schema.name),
                    )
                    .with_span(format!("{class}.{attr}"))
                    .with_help(attrs_help(schema)),
                );
                None
            }
        }
    }
}

pub(crate) fn known_classes_help(universe: &SchemaUniverse) -> String {
    let names: Vec<&str> = universe.classes().map(|c| c.name.as_str()).collect();
    format!("known classes: {}", names.join(", "))
}

pub(crate) fn attrs_help(schema: &ClassSchema) -> String {
    let names: Vec<&str> = schema.attrs.iter().map(|(a, _)| a.as_str()).collect();
    format!("{} attributes: {}", schema.name, names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AttrIr, GroupColumnIr};

    fn demo_lat() -> LatIr {
        LatIr {
            name: "Duration_LAT".into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![
                AggColumnIr {
                    func: AggFuncIr::Count,
                    source: None,
                    alias: "N".into(),
                    aging: false,
                },
                AggColumnIr {
                    func: AggFuncIr::Avg,
                    source: Some(AttrIr {
                        class: "Query".into(),
                        attr: "Duration".into(),
                    }),
                    alias: "Avg_Duration".into(),
                    aging: true,
                },
                AggColumnIr {
                    func: AggFuncIr::Max,
                    source: Some(AttrIr {
                        class: "Query".into(),
                        attr: "User".into(),
                    }),
                    alias: "Last_User".into(),
                    aging: false,
                },
            ],
            bounded: true,
            max_rows: None,
            shards: None,
        }
    }

    #[test]
    fn lat_column_types_are_inferred() {
        let mut u = SchemaUniverse::builtin();
        assert!(u.register_lat(&demo_lat()).is_empty());
        let lat = u.lat("duration_lat").expect("registered");
        assert_eq!(lat.source_class, "Query");
        assert_eq!(lat.column("Sig").unwrap().ty, Some(DataType::Int));
        assert_eq!(lat.column("N").unwrap().ty, Some(DataType::Int));
        assert_eq!(
            lat.column("avg_duration").unwrap().ty,
            Some(DataType::Float)
        );
        assert_eq!(lat.column("Last_User").unwrap().ty, Some(DataType::Text));
        assert!(lat.column("Avg_Duration").unwrap().aging);
        assert_eq!(lat.aging_aggregates, 1);
        assert!(lat.bounded);
    }

    #[test]
    fn bad_source_reference_reports_e001_and_skips_registration() {
        let mut u = SchemaUniverse::builtin();
        let mut ir = demo_lat();
        ir.group_by[0].source.attr = "Bogus".into();
        let diags = u.register_lat(&ir);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E001);
        assert!(u.lat("Duration_LAT").is_none());
    }

    #[test]
    fn iterable_flags_match_runtime_iteration_sets() {
        let u = SchemaUniverse::builtin();
        for (class, iterable) in [
            ("Query", true),
            ("Blocker", true),
            ("Blocked", true),
            ("Table", true),
            ("Transaction", false),
            ("Session", false),
            ("Timer", false),
            ("Monitor", false),
        ] {
            assert_eq!(u.class(class).unwrap().iterable, iterable, "{class}");
        }
    }
}
