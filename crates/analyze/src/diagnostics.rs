//! Diagnostic model: stable codes, severities, and rendering.
//!
//! Every check in this crate reports through [`Diagnostic`]. Codes are stable
//! API: tools (and tests) match on `E...`/`W...` strings, so once published a
//! code keeps its meaning. `E` codes deny registration; `W` codes are
//! collected and surfaced but never block.

use std::fmt;

/// How severe a diagnostic is. Errors deny rule/LAT registration; warnings
/// are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    Error,
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// Stable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Unknown LAT, class attribute, or LAT column reference.
    E001,
    /// Condition type mismatch (e.g. a COUNT column compared with a string).
    E002,
    /// LAT reference whose grouping columns can never be matched from an
    /// in-scope object: under missing-row ⇒ false semantics the condition is
    /// statically always false.
    E003,
    /// Cascade cycle through LAT-eviction or timer events — the ruleset could
    /// recurse without bound (the paper's no-recursion restriction, §4).
    E004,
    /// Invalid shard count on a LAT spec (zero, or above the runtime ceiling).
    E005,
    /// Dead rule: the condition references a class that is neither in the
    /// event payload nor iterable, so the rule can never fire.
    W101,
    /// Duplicate rule: same event and identical condition as an earlier rule.
    W102,
    /// Estimated per-firing cost exceeds the analyzer's threshold.
    W201,
    /// More shards than the LAT's row bound — the extra shards can never all
    /// be occupied and only add eviction-scan overhead.
    W202,
    /// Condition provably unsatisfiable under the attribute interval domains
    /// (e.g. a COUNT column compared `< 0`) — the rule can never fire.
    E006,
    /// Condition provably tautological — the rule fires on every event it
    /// sees, so the condition is dead weight (or a comparison is inverted).
    W103,
    /// Division whose divisor is an aggregate column that may be zero or
    /// NULL (AVG/SUM over an empty or never-fed window).
    W104,
    /// Identical predicate duplicated across rules on the same event — the
    /// dispatch plan shares its evaluation via a CSE slot, but the rules may
    /// want factoring.
    W105,
    /// Condition reads a LAT aggregate column that no admitted rule's
    /// `Insert` ever feeds — the column stays at its initial aggregate.
    W203,
    /// Unconditional external action (`SendMail`/`RunExternal`) on a hot
    /// event class — every single event pays the external-sink cost, with no
    /// condition to thin the firings.
    W204,
    /// Unindexable condition on a hot event class: the condition reads only
    /// payload attributes yet yields no guard atom the dispatch-time guard
    /// index can use, so the rule is evaluated on every event of the class
    /// instead of being pruned when it provably cannot match.
    W205,
    /// Order-sensitive pair: an earlier same-event rule reads columns this
    /// rule writes, so swapping the two changes observable behaviour.
    W301,
    /// Cascade amplification: a single event can transitively trigger more
    /// rule evaluations than the analyzer's threshold.
    W302,
}

impl Code {
    /// Every code, in documentation order. New codes must be added here —
    /// the exhaustiveness test in `tests/codes.rs` walks this list.
    pub const ALL: [Code; 18] = [
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
        Code::E005,
        Code::E006,
        Code::W101,
        Code::W102,
        Code::W103,
        Code::W104,
        Code::W105,
        Code::W201,
        Code::W202,
        Code::W203,
        Code::W204,
        Code::W205,
        Code::W301,
        Code::W302,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::E006 => "E006",
            Code::W101 => "W101",
            Code::W102 => "W102",
            Code::W103 => "W103",
            Code::W104 => "W104",
            Code::W105 => "W105",
            Code::W201 => "W201",
            Code::W202 => "W202",
            Code::W203 => "W203",
            Code::W204 => "W204",
            Code::W205 => "W205",
            Code::W301 => "W301",
            Code::W302 => "W302",
        }
    }

    /// Severity is determined by the code family.
    pub fn severity(self) -> Severity {
        match self {
            Code::E001 | Code::E002 | Code::E003 | Code::E004 | Code::E005 | Code::E006 => {
                Severity::Error
            }
            Code::W101
            | Code::W102
            | Code::W103
            | Code::W104
            | Code::W105
            | Code::W201
            | Code::W202
            | Code::W203
            | Code::W204
            | Code::W205
            | Code::W301
            | Code::W302 => Severity::Warning,
        }
    }

    /// Short human title, used by the lint front end.
    pub fn title(self) -> &'static str {
        match self {
            Code::E001 => "unknown reference",
            Code::E002 => "type mismatch",
            Code::E003 => "unjoinable LAT reference",
            Code::E004 => "cascade cycle",
            Code::E005 => "invalid shard count",
            Code::E006 => "unsatisfiable condition",
            Code::W101 => "dead rule",
            Code::W102 => "duplicate rule",
            Code::W103 => "tautological condition",
            Code::W104 => "possible division by zero",
            Code::W105 => "duplicated predicate across rules",
            Code::W201 => "costly rule",
            Code::W202 => "over-sharded LAT",
            Code::W203 => "read-only LAT column",
            Code::W204 => "unconditional external action",
            Code::W205 => "unindexable hot-event condition",
            Code::W301 => "order-sensitive rule pair",
            Code::W302 => "cascade amplification",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Name of the rule (or LAT) the finding is attached to.
    pub rule: String,
    /// Textual locus inside the rule: a rendered sub-expression or action.
    pub span: Option<String>,
    pub message: String,
    /// Optional suggestion for fixing the finding.
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn new(code: Code, rule: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            rule: rule.into(),
            span: None,
            message: message.into(),
            help: None,
        }
    }

    pub fn with_span(mut self, span: impl Into<String>) -> Diagnostic {
        self.span = Some(span.into());
        self
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.code, self.rule, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " (at `{span}`)")?;
        }
        if let Some(help) = &self.help {
            write!(f, "; help: {help}")?;
        }
        Ok(())
    }
}

/// True when any diagnostic in the slice denies registration.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::E001.as_str(), "E001");
        assert_eq!(Code::W201.as_str(), "W201");
        assert_eq!(Code::E004.severity(), Severity::Error);
        assert_eq!(Code::W101.severity(), Severity::Warning);
    }

    #[test]
    fn display_renders_code_rule_span_help() {
        let d = Diagnostic::new(Code::E002, "r1", "cannot compare INT with TEXT")
            .with_span("L.N = 'x'")
            .with_help("compare with an integer literal");
        let s = d.to_string();
        assert!(s.contains("E002"));
        assert!(s.contains("[r1]"));
        assert!(s.contains("`L.N = 'x'`"));
        assert!(s.contains("help:"));
    }
}
