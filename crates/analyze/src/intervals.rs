//! Interval analysis of rule conditions (E006 / W103 / W104).
//!
//! Attribute values get a numeric abstract domain:
//!
//! * durations, wait times, latencies, costs — non-negative reals `[0, +∞)`;
//! * counters (`Times_Blocked`, `Monitor.Events`, COUNT columns, …) — ℕ,
//!   abstracted as `[0, +∞)`;
//! * signature ids, session/transaction ids — *opaque*: numeric but
//!   unconstrained and never ordered against anything meaningfully, so every
//!   comparison involving them stays unknown;
//! * LAT aggregate columns derive their interval from the source attribute's
//!   domain through the aggregate function (AVG/SUM/MIN/MAX of non-negatives
//!   is non-negative, STDEV is non-negative, COUNT is ℕ) and are
//!   *maybe-NULL*: a value aggregate that was never fed compares as false.
//!
//! Propagating these through the condition yields a three-valued verdict:
//!
//! * **must-false** — the condition cannot evaluate to true on any event:
//!   **E006**, registration denied (the alarm that cannot ring, made loud);
//! * **must-true** — the condition holds on every event that binds:
//!   **W103** (the condition is dead weight, or a comparison is inverted);
//! * otherwise unknown — no finding.
//!
//! Soundness over precision: comparisons only decide when both operand
//! intervals are disjoint/ordered *and* NULL cannot intervene (a NULL operand
//! makes the runtime comparison false, which is fine for must-false but
//! poisons must-true). Conjunctions don't propagate constraints between
//! comparisons — `X >= 30 AND X < 10` is not caught, only single comparisons
//! with provably-empty truth sets are.
//!
//! When the abstract domain decides nothing, the IR's constant-folding pass
//! gets a second opinion: a condition whose *folded* root is a literal
//! (`'a' = 'b'`, `1 % 2 = 1`, `'abc' LIKE 'a%'` — shapes the numeric domain
//! cannot see through) is reported as W103 (folds to TRUE) or E006 (folds to
//! FALSE or NULL).
//!
//! Separately, any division whose divisor is an aggregate read whose interval
//! contains zero (an AVG/SUM over a possibly-empty window) reports **W104**.
//!
//! The pass recurses over the shared flat [`ExprIr`] lowered once per rule.

use sqlcm_common::{DataType, Value};
use sqlcm_sql::{BinOp, ExprIr, IrOp, NodeId, UnaryOp};

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::{LatColumn, SchemaUniverse};
use crate::AggFuncIr;

/// A closed numeric interval over the extended reals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };
    pub const NON_NEG: Interval = Interval {
        lo: 0.0,
        hi: f64::INFINITY,
    };

    fn point(v: f64) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// Three-valued abstract boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsBool {
    True,
    False,
    Unknown,
}

/// Abstract value of a sub-expression.
#[derive(Debug, Clone, Copy)]
enum AbsVal {
    Num {
        iv: Interval,
        /// The value may be NULL at runtime (unfed aggregate). A NULL operand
        /// makes any comparison evaluate to false.
        maybe_null: bool,
        /// Opaque identifier: the interval is formal only; comparisons must
        /// not conclude anything from it.
        opaque: bool,
    },
    Bool(AbsBool),
    /// Text, blob, parameters, function calls, unresolved references.
    Other,
}

impl AbsVal {
    fn num(iv: Interval) -> AbsVal {
        AbsVal::Num {
            iv,
            maybe_null: false,
            opaque: false,
        }
    }

    fn opaque_num() -> AbsVal {
        AbsVal::Num {
            iv: Interval::TOP,
            maybe_null: false,
            opaque: true,
        }
    }
}

/// Check one rule condition, reporting E006/W103/W104 into `diags`.
pub fn check_condition(
    universe: &SchemaUniverse,
    rule: &str,
    ir: &ExprIr,
    diags: &mut Vec<Diagnostic>,
) {
    let before = diags.len();
    let verdict = eval(universe, rule, ir, ir.root, diags);
    // W104 findings from the walk stand on their own; the root verdict is
    // only reported when the sub-walk found nothing else to say.
    if diags.len() != before {
        return;
    }
    match verdict {
        AbsVal::Bool(AbsBool::False) => diags.push(
            Diagnostic::new(
                Code::E006,
                rule,
                "condition is provably unsatisfiable under the attribute domains".to_string(),
            )
            .with_span(ir.render(ir.root))
            .with_help(
                "the rule could never fire (e.g. a COUNT or duration compared below \
                 zero); fix the comparison or drop the rule",
            ),
        ),
        AbsVal::Bool(AbsBool::True) => diags.push(
            Diagnostic::new(
                Code::W103,
                rule,
                "condition is provably true whenever it binds".to_string(),
            )
            .with_span(ir.render(ir.root))
            .with_help(
                "the comparison never constrains anything; drop it or check whether \
                 it is inverted",
            ),
        ),
        // The numeric domain decided nothing — let constant folding try.
        // Folding evaluates with the runtime's exact semantics, so it sees
        // through text comparisons, LIKE, IN and modulo that the interval
        // abstraction treats as opaque.
        _ => check_folded(rule, ir, diags),
    }
}

/// Fold-strengthened verdict: if the whole condition constant-folds to a
/// literal, the rule either always fires (W103) or never fires (E006),
/// regardless of what the interval domain could prove.
fn check_folded(rule: &str, ir: &ExprIr, diags: &mut Vec<Diagnostic>) {
    let folded = ir.fold();
    if never_true(&folded, folded.root) {
        diags.push(
            Diagnostic::new(
                Code::E006,
                rule,
                "condition constant-folds to a value that can never be true".to_string(),
            )
            .with_span(ir.render(ir.root))
            .with_help("the rule could never fire; fix the condition or drop the rule"),
        );
    } else if always_true(&folded, folded.root) {
        diags.push(
            Diagnostic::new(
                Code::W103,
                rule,
                "condition constant-folds to TRUE".to_string(),
            )
            .with_span(ir.render(ir.root))
            .with_help("the condition is a constant; drop it or check whether it is inverted"),
        );
    }
}

/// Can the folded subtree ever evaluate to TRUE? A FALSE/NULL constant
/// operand of an AND makes the conjunction at best NULL (the fallible other
/// operand is still evaluated at runtime — its error or missing-LAT-row
/// outcome just prevents firing too, so "never fires" stays sound).
fn never_true(ir: &ExprIr, id: NodeId) -> bool {
    match ir.op(id) {
        IrOp::Const(c) => matches!(ir.consts[*c as usize], Value::Bool(false) | Value::Null),
        IrOp::Binary {
            left,
            op: BinOp::And,
            right,
        } => never_true(ir, *left) || never_true(ir, *right),
        IrOp::Binary {
            left,
            op: BinOp::Or,
            right,
        } => never_true(ir, *left) && never_true(ir, *right),
        _ => false,
    }
}

/// Does the folded subtree evaluate to TRUE whenever it binds (i.e. barring
/// errors and missing LAT rows)? Mirrors the W103 "whenever it binds" caveat.
fn always_true(ir: &ExprIr, id: NodeId) -> bool {
    match ir.op(id) {
        IrOp::Const(c) => matches!(ir.consts[*c as usize], Value::Bool(true)),
        IrOp::Binary {
            left,
            op: BinOp::And,
            right,
        } => always_true(ir, *left) && always_true(ir, *right),
        IrOp::Binary {
            left,
            op: BinOp::Or,
            right,
        } => always_true(ir, *left) || always_true(ir, *right),
        _ => false,
    }
}

/// Domain of a class attribute, by name convention (the builtin schema keeps
/// these names in sync with the runtime object constructors).
fn attr_domain(attr: &str, ty: DataType) -> AbsVal {
    let lower = attr.to_ascii_lowercase();
    // Identifiers first: numeric representation, but ordering is meaningless.
    if lower == "id" || lower.ends_with("_id") || lower.ends_with("_signature") {
        return AbsVal::opaque_num();
    }
    match ty {
        DataType::Float | DataType::Timestamp => {
            // Every Float attribute of the monitored classes is a duration,
            // wait time, latency or cost — all non-negative; timestamps are
            // microseconds since an epoch.
            AbsVal::num(Interval::NON_NEG)
        }
        DataType::Int => {
            // The remaining Int attributes are all counters.
            AbsVal::num(Interval::NON_NEG)
        }
        DataType::Bool => AbsVal::Bool(AbsBool::Unknown),
        DataType::Text | DataType::Blob => AbsVal::Other,
    }
}

/// Domain of a LAT column, derived from its aggregate function and source
/// attribute domain.
fn lat_column_domain(universe: &SchemaUniverse, col: &LatColumn) -> AbsVal {
    let source_domain = || -> AbsVal {
        match &col.source {
            Some((class, attr)) => match universe
                .class(class)
                .and_then(|c| c.attr_type(attr).map(|t| (c.canonical_attr(attr), t)))
            {
                Some((name, ty)) => attr_domain(name.unwrap_or(attr), ty),
                None => AbsVal::Other,
            },
            None => AbsVal::Other,
        }
    };
    if col.group {
        // Key columns hold source-attribute values and are never NULL in a
        // materialized row.
        return source_domain();
    }
    match col.func {
        Some(AggFuncIr::Count) => AbsVal::num(Interval::NON_NEG),
        Some(AggFuncIr::StdDev) => AbsVal::Num {
            iv: Interval::NON_NEG,
            maybe_null: true,
            opaque: false,
        },
        Some(
            AggFuncIr::Sum
            | AggFuncIr::Avg
            | AggFuncIr::Min
            | AggFuncIr::Max
            | AggFuncIr::First
            | AggFuncIr::Last,
        ) => match source_domain() {
            AbsVal::Num { iv, opaque, .. } => AbsVal::Num {
                // SUM/AVG/MIN/MAX/FIRST/LAST of values in [lo, hi≥0] stay
                // within the source sign; only the non-negative lower bound
                // survives abstraction (SUM of many values grows above hi).
                iv: Interval {
                    lo: if iv.lo >= 0.0 { 0.0 } else { f64::NEG_INFINITY },
                    hi: f64::INFINITY,
                },
                maybe_null: true,
                opaque,
            },
            other => other,
        },
        None => AbsVal::Other,
    }
}

fn column_domain(universe: &SchemaUniverse, qualifier: &Option<String>, name: &str) -> AbsVal {
    let Some(q) = qualifier else {
        return AbsVal::Other;
    };
    if let Some(class) = universe.class(q) {
        return match class.attr_type(name) {
            Some(ty) => attr_domain(class.canonical_attr(name).unwrap_or(name), ty),
            None => AbsVal::Other,
        };
    }
    match universe.lat(q).and_then(|l| l.column(name)) {
        Some(col) => lat_column_domain(universe, col),
        None => AbsVal::Other,
    }
}

fn not(b: AbsBool) -> AbsBool {
    match b {
        AbsBool::True => AbsBool::False,
        AbsBool::False => AbsBool::True,
        AbsBool::Unknown => AbsBool::Unknown,
    }
}

fn and(a: AbsBool, b: AbsBool) -> AbsBool {
    match (a, b) {
        (AbsBool::False, _) | (_, AbsBool::False) => AbsBool::False,
        (AbsBool::True, AbsBool::True) => AbsBool::True,
        _ => AbsBool::Unknown,
    }
}

fn or(a: AbsBool, b: AbsBool) -> AbsBool {
    match (a, b) {
        (AbsBool::True, _) | (_, AbsBool::True) => AbsBool::True,
        (AbsBool::False, AbsBool::False) => AbsBool::False,
        _ => AbsBool::Unknown,
    }
}

/// Compare two abstract numbers under `op`. Decides only when the intervals
/// prove the outcome; a maybe-NULL operand blocks must-true (NULL compares
/// false at runtime) but not must-false; opaque operands decide nothing.
fn compare(op: BinOp, l: AbsVal, r: AbsVal) -> AbsBool {
    let (
        AbsVal::Num {
            iv: a,
            maybe_null: an,
            opaque: ao,
        },
        AbsVal::Num {
            iv: b,
            maybe_null: bn,
            opaque: bo,
        },
    ) = (l, r)
    else {
        return AbsBool::Unknown;
    };
    if ao || bo {
        return AbsBool::Unknown;
    }
    let raw = match op {
        BinOp::Lt => {
            if a.hi < b.lo {
                AbsBool::True
            } else if a.lo >= b.hi {
                AbsBool::False
            } else {
                AbsBool::Unknown
            }
        }
        BinOp::LtEq => {
            if a.hi <= b.lo {
                AbsBool::True
            } else if a.lo > b.hi {
                AbsBool::False
            } else {
                AbsBool::Unknown
            }
        }
        BinOp::Gt => compare_swapped(BinOp::Lt, b, a),
        BinOp::GtEq => compare_swapped(BinOp::LtEq, b, a),
        BinOp::Eq => {
            if a.lo > b.hi || b.lo > a.hi {
                AbsBool::False
            } else if a.lo == a.hi && b.lo == b.hi && a.lo == b.lo {
                AbsBool::True
            } else {
                AbsBool::Unknown
            }
        }
        BinOp::NotEq => not(compare(BinOp::Eq, AbsVal::num(a), AbsVal::num(b))),
        _ => AbsBool::Unknown,
    };
    if raw == AbsBool::True && (an || bn) {
        // A NULL operand would make the runtime comparison false.
        AbsBool::Unknown
    } else {
        raw
    }
}

fn compare_swapped(op: BinOp, a: Interval, b: Interval) -> AbsBool {
    compare(op, AbsVal::num(a), AbsVal::num(b))
}

fn arith(op: BinOp, a: Interval, b: Interval) -> Interval {
    let clean = |v: f64, inf_sign: f64| if v.is_nan() { inf_sign } else { v };
    match op {
        BinOp::Add => Interval {
            lo: clean(a.lo + b.lo, f64::NEG_INFINITY),
            hi: clean(a.hi + b.hi, f64::INFINITY),
        },
        BinOp::Sub => Interval {
            lo: clean(a.lo - b.hi, f64::NEG_INFINITY),
            hi: clean(a.hi - b.lo, f64::INFINITY),
        },
        BinOp::Mul => {
            let cands = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for c in cands {
                if c.is_nan() {
                    return Interval::TOP; // 0 · ∞ — give up
                }
                lo = lo.min(c);
                hi = hi.max(c);
            }
            Interval { lo, hi }
        }
        // Division and modulo: a divisor interval containing zero makes the
        // result unbounded; otherwise stay conservative.
        _ => Interval::TOP,
    }
}

fn eval(
    universe: &SchemaUniverse,
    rule: &str,
    ir: &ExprIr,
    id: NodeId,
    diags: &mut Vec<Diagnostic>,
) -> AbsVal {
    match ir.op(id) {
        IrOp::Const(c) => match &ir.consts[*c as usize] {
            Value::Int(i) => AbsVal::num(Interval::point(*i as f64)),
            Value::Float(f) => AbsVal::num(Interval::point(*f)),
            Value::Timestamp(t) => AbsVal::num(Interval::point(*t as f64)),
            Value::Bool(b) => AbsVal::Bool(if *b { AbsBool::True } else { AbsBool::False }),
            _ => AbsVal::Other,
        },
        IrOp::Ref(r) => {
            let (qualifier, name) = &ir.refs[*r as usize];
            column_domain(universe, qualifier, name)
        }
        IrOp::Param(_) | IrOp::NamedParam(_) | IrOp::FuncCall { .. } => AbsVal::Other,
        IrOp::Unary { op, expr } => {
            let v = eval(universe, rule, ir, *expr, diags);
            match op {
                UnaryOp::Not => match v {
                    AbsVal::Bool(b) => AbsVal::Bool(not(b)),
                    _ => AbsVal::Bool(AbsBool::Unknown),
                },
                UnaryOp::Neg => match v {
                    AbsVal::Num {
                        iv,
                        maybe_null,
                        opaque,
                    } => AbsVal::Num {
                        iv: Interval {
                            lo: -iv.hi,
                            hi: -iv.lo,
                        },
                        maybe_null,
                        opaque,
                    },
                    _ => AbsVal::Other,
                },
            }
        }
        IrOp::Binary { left, op, right } => {
            let l = eval(universe, rule, ir, *left, diags);
            let r = eval(universe, rule, ir, *right, diags);
            match op {
                BinOp::And | BinOp::Or => {
                    let lb = as_bool(l);
                    let rb = as_bool(r);
                    AbsVal::Bool(if *op == BinOp::And {
                        and(lb, rb)
                    } else {
                        or(lb, rb)
                    })
                }
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Gt | BinOp::LtEq | BinOp::GtEq => {
                    AbsVal::Bool(compare(*op, l, r))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    if matches!(op, BinOp::Div | BinOp::Mod) {
                        check_divisor(rule, ir, *right, r, diags);
                    }
                    match (l, r) {
                        (
                            AbsVal::Num {
                                iv: a,
                                maybe_null: an,
                                opaque: ao,
                            },
                            AbsVal::Num {
                                iv: b,
                                maybe_null: bn,
                                opaque: bo,
                            },
                        ) => AbsVal::Num {
                            iv: arith(*op, a, b),
                            maybe_null: an || bn,
                            opaque: ao || bo,
                        },
                        _ => AbsVal::Other,
                    }
                }
            }
        }
        // IS NULL / LIKE / IN could be refined; unknown is always sound.
        IrOp::IsNull { .. } | IrOp::Like { .. } | IrOp::InList { .. } => {
            AbsVal::Bool(AbsBool::Unknown)
        }
    }
}

fn as_bool(v: AbsVal) -> AbsBool {
    match v {
        AbsVal::Bool(b) => b,
        _ => AbsBool::Unknown,
    }
}

/// W104 — the divisor of a `/` (or `%`) reads a LAT aggregate whose interval
/// contains zero: an AVG/SUM over a window that may be empty (or a COUNT of
/// zero rows) divides the expression by zero or NULL at runtime.
fn check_divisor(rule: &str, ir: &ExprIr, divisor: NodeId, v: AbsVal, diags: &mut Vec<Diagnostic>) {
    let AbsVal::Num {
        iv,
        maybe_null,
        opaque,
    } = v
    else {
        return;
    };
    if opaque || !iv.contains(0.0) {
        return;
    }
    // Only flag divisors that actually read an aggregate — a literal 0 would
    // be a plain bug and `Query.Duration` in a divisor is too speculative.
    let mut reads_aggregate = false;
    ir.for_each(divisor, &mut |n| {
        if let IrOp::Ref(r) = ir.op(n) {
            if ir.refs[*r as usize].0.is_some() {
                reads_aggregate = true;
            }
        }
    });
    if !reads_aggregate {
        return;
    }
    let nullness = if maybe_null {
        " (or NULL when never fed)"
    } else {
        ""
    };
    diags.push(
        Diagnostic::new(
            Code::W104,
            rule,
            format!("divisor `{}` may be zero{nullness}", ir.disp(divisor)),
        )
        .with_span(ir.render(divisor))
        .with_help(
            "guard the division, e.g. `... AND Lat.N > 0`, or compare with a \
             product instead: `a > k * b` rather than `a / b > k`",
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AttrIr, GroupColumnIr, LatIr};

    fn universe() -> SchemaUniverse {
        let mut u = SchemaUniverse::builtin();
        let diags = u.register_lat(&LatIr {
            name: "D_LAT".into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![
                AggColumnIr {
                    func: AggFuncIr::Count,
                    source: None,
                    alias: "N".into(),
                    aging: false,
                },
                AggColumnIr {
                    func: AggFuncIr::Avg,
                    source: Some(AttrIr {
                        class: "Query".into(),
                        attr: "Duration".into(),
                    }),
                    alias: "AD".into(),
                    aging: false,
                },
            ],
            bounded: false,
            max_rows: None,
            shards: None,
        });
        assert!(diags.is_empty(), "{diags:?}");
        u
    }

    fn check(cond: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let ir = ExprIr::lower(&sqlcm_sql::parse_expression(cond).unwrap());
        check_condition(&universe(), "t", &ir, &mut diags);
        diags
    }

    fn codes(cond: &str) -> Vec<&'static str> {
        check(cond).iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn negative_count_is_unsatisfiable() {
        assert_eq!(codes("D_LAT.N < 0"), ["E006"]);
        assert_eq!(codes("Query.Duration < -1"), ["E006"]);
        assert_eq!(codes("D_LAT.N >= 0 AND D_LAT.N < 0"), ["E006"]);
    }

    #[test]
    fn non_negative_duration_is_tautological() {
        assert_eq!(codes("Query.Duration >= 0"), ["W103"]);
        assert_eq!(codes("D_LAT.N >= 0"), ["W103"]);
    }

    #[test]
    fn maybe_null_aggregate_blocks_tautology_but_not_unsat() {
        // AD may be NULL (never fed) — the comparison can be false, so no W103.
        assert!(codes("D_LAT.AD >= 0").is_empty());
        // But it can never be *true* below zero, NULL or not.
        assert_eq!(codes("D_LAT.AD < 0"), ["E006"]);
    }

    #[test]
    fn opaque_signatures_decide_nothing() {
        assert!(codes("Query.Logical_Signature >= 0").is_empty());
        assert!(codes("D_LAT.Sig < 0").is_empty());
        assert!(codes("Query.Session_ID < 0").is_empty());
    }

    #[test]
    fn satisfiable_conditions_are_clean() {
        assert!(codes("Query.Duration > 5").is_empty());
        assert!(codes("D_LAT.N >= 30 AND D_LAT.AD > 0.5").is_empty());
        assert!(codes("Query.Duration > 5 * D_LAT.AD").is_empty());
        // Cross-comparison constraints are out of scope, deliberately.
        assert!(codes("D_LAT.N >= 30 AND D_LAT.N < 10").is_empty());
    }

    #[test]
    fn division_by_possibly_empty_avg_is_w104() {
        assert_eq!(codes("Query.Duration / D_LAT.AD > 5"), ["W104"]);
        assert_eq!(codes("Query.Duration / D_LAT.N > 5"), ["W104"]);
        // Guarded or literal divisors stay silent.
        assert!(codes("Query.Duration / 2 > 5").is_empty());
    }

    #[test]
    fn not_flips_a_decided_comparison() {
        assert_eq!(codes("NOT (D_LAT.N >= 0)"), ["E006"]);
        assert_eq!(codes("NOT (Query.Duration < 0)"), ["W103"]);
    }

    #[test]
    fn constant_folding_strengthens_the_verdict() {
        // Text equality and LIKE are invisible to the numeric domain but
        // fold to literals.
        assert_eq!(codes("'a' = 'b'"), ["E006"]);
        assert_eq!(codes("'abc' LIKE 'a%'"), ["W103"]);
        assert_eq!(codes("7 % 4 = 3"), ["W103"]);
        assert_eq!(codes("Query.Duration > 5 AND 'a' IN ('b')"), ["E006"]);
        // A NULL-folding condition never fires either.
        assert_eq!(codes("NULL IS NOT NULL"), ["E006"]);
        // An erroring constant subtree stays unfolded — no false verdict.
        assert!(codes("Query.Duration > 1 / 0").is_empty());
    }
}
