//! Ruleset-level analysis: cascade/termination (E004) and duplicate rules
//! (W102).
//!
//! Rules can trigger rules. The engine has exactly two such channels:
//!
//! * `Insert(L)` into a **bounded** LAT may evict a row, raising
//!   `LatEviction(L)` — which feeds every rule registered on that event;
//! * `SetTimer(t)` arms a timer whose `TimerAlarm(t)` events feed every rule
//!   registered on them.
//!
//! The paper forbids recursive rule chains (§4, Appendix A) precisely because
//! an `Insert` fired from a `LatEviction` rule back into the same LAT can
//! cascade without bound. This module builds the rule → rule trigger graph
//! and rejects any cycle the newly registered rule would close (**E004**).
//! Because rules are admitted one at a time and the admitted set is acyclic,
//! every new cycle must pass through the new rule — a DFS from it suffices.
//!
//! **W102** flags a rule whose event *and* condition are identical to an
//! already-admitted rule: both will fire on exactly the same events, which is
//! almost always a copy-paste mistake.
//!
//! **W105** flags a *partial* overlap W102 misses: two same-event rules with
//! different conditions that share a non-trivial boolean subexpression. The
//! runtime's dispatch plan de-duplicates such subtrees (they evaluate once
//! per event into a shared CSE slot), so the lint reports the opportunity
//! the plan exploits — and nudges the author to factor the predicate if the
//! duplication was accidental.

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::SchemaUniverse;
use crate::{ActionIr, RuleIr};
use sqlcm_sql::{ExprIr, NodeId};

/// Events (kind, argument) a rule's actions may raise.
pub(crate) fn raised_events(
    universe: &SchemaUniverse,
    rule: &RuleIr,
) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    for action in &rule.actions {
        match action {
            ActionIr::Insert { lat } => {
                // Only bounded LATs evict; an unknown LAT is an E001 elsewhere.
                if let Some(schema) = universe.lat(lat) {
                    if schema.bounded {
                        out.push(("LatEviction", schema.name.clone()));
                    }
                }
            }
            ActionIr::SetTimer { timer } => out.push(("TimerAlarm", timer.clone())),
            _ => {}
        }
    }
    out
}

/// Longest cascade chain an admitted ruleset can produce, measured in
/// *cascaded events*: a root event handled directly is depth 0, every
/// eviction/timer event a handler's actions raise sits one deeper. The
/// runtime's causal traces record the same measure per dispatched event, so
/// observed trace depths must never exceed this bound — the cross-check the
/// trace-tree tests pin.
///
/// The admitted set is acyclic (E004 denies cycles at registration), but the
/// walk still guards against one defensively — a rule on a cycle reports the
/// trivial upper bound `rules.len()` instead of recursing forever.
pub fn max_cascade_depth(universe: &SchemaUniverse, rules: &[RuleIr]) -> usize {
    fn depth_of(
        universe: &SchemaUniverse,
        all: &[RuleIr],
        i: usize,
        visiting: &mut [bool],
        memo: &mut [Option<usize>],
    ) -> usize {
        if let Some(d) = memo[i] {
            return d;
        }
        if visiting[i] {
            return all.len();
        }
        visiting[i] = true;
        let mut deepest = 0usize;
        for (kind, arg) in raised_events(universe, &all[i]) {
            for (j, r) in all.iter().enumerate() {
                if r.event.is(kind, &arg) {
                    deepest = deepest.max(1 + depth_of(universe, all, j, visiting, memo));
                }
            }
        }
        visiting[i] = false;
        memo[i] = Some(deepest);
        deepest
    }
    let mut visiting = vec![false; rules.len()];
    let mut memo = vec![None; rules.len()];
    (0..rules.len())
        .map(|i| depth_of(universe, rules, i, &mut visiting, &mut memo))
        .max()
        .unwrap_or(0)
}

/// Reject a cascade cycle that `new` would close.
pub fn check_cascades(
    universe: &SchemaUniverse,
    existing: &[RuleIr],
    new: &RuleIr,
    diags: &mut Vec<Diagnostic>,
) {
    let all: Vec<&RuleIr> = existing.iter().chain(std::iter::once(new)).collect();
    let start = all.len() - 1;
    let successors = |i: usize| -> Vec<usize> {
        raised_events(universe, all[i])
            .into_iter()
            .flat_map(|(kind, arg)| {
                all.iter()
                    .enumerate()
                    .filter(move |(_, r)| r.event.is(kind, &arg))
                    .map(|(j, _)| j)
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    // DFS from the new rule looking for a path back to it.
    let mut path = vec![start];
    let mut visited = vec![false; all.len()];
    if let Some(cycle) = dfs(start, start, &successors, &mut visited, &mut path) {
        let names: Vec<&str> = cycle.iter().map(|&i| all[i].name.as_str()).collect();
        diags.push(
            Diagnostic::new(
                Code::E004,
                &new.name,
                format!(
                    "cascade cycle: {} -> {}; rule chains must terminate (the framework \
                     forbids recursive rules)",
                    names.join(" -> "),
                    names[0]
                ),
            )
            .with_help(
                "break the cycle: insert into an unbounded LAT, drop the SetTimer/Insert \
                 action, or register the downstream rule on a different event",
            ),
        );
    }
}

fn dfs(
    cur: usize,
    target: usize,
    successors: &impl Fn(usize) -> Vec<usize>,
    visited: &mut Vec<bool>,
    path: &mut Vec<usize>,
) -> Option<Vec<usize>> {
    for next in successors(cur) {
        if next == target {
            return Some(path.clone());
        }
        if !visited[next] {
            visited[next] = true;
            path.push(next);
            if let Some(cycle) = dfs(next, target, successors, visited, path) {
                return Some(cycle);
            }
            path.pop();
        }
    }
    None
}

/// Warn when `new` duplicates an already-admitted rule: same event instance,
/// structurally identical condition, and the same actions. (Same event and
/// condition with *different* actions is the normal fan-out idiom — one
/// event feeding several LATs — and is not flagged.)
pub fn check_duplicates(existing: &[RuleIr], new: &RuleIr, diags: &mut Vec<Diagnostic>) {
    for r in existing {
        if r.event.same_as(&new.event) && r.condition == new.condition && r.actions == new.actions {
            diags.push(
                Diagnostic::new(
                    Code::W102,
                    &new.name,
                    format!(
                        "duplicates rule `{}`: same event ({}), identical condition and \
                         actions — the work happens twice on every matching event",
                        r.name, new.event
                    ),
                )
                .with_help("remove one of the rules"),
            );
            return;
        }
    }
}

/// W105 — `new` shares a non-trivial predicate with an already-admitted rule
/// on the same event instance, without being an exact duplicate (identical
/// whole conditions are W102's territory, and same-condition/different-action
/// fan-out is a deliberate idiom left unflagged).
///
/// "Non-trivial" means a boolean-valued subtree of at least 3 IR ops (a
/// comparison with both operands, or anything larger); matching runs over the
/// *folded* IR with canonical structural hashes — the same key the dispatch
/// plan uses to assign shared CSE slots — with a structural-equality check
/// guarding against hash collisions.
pub fn check_shared_predicates(
    existing: &[RuleIr],
    new: &RuleIr,
    new_ir: Option<&ExprIr>,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(new_ir) = new_ir else { return };
    let folded = new_ir.fold();
    // Candidate subtrees of the new condition, largest first.
    let mut cands: Vec<NodeId> = Vec::new();
    folded.for_each(folded.root, &mut |id| {
        if folded.is_boolish(id) && folded.size_of(id) >= 3 {
            cands.push(id);
        }
    });
    if cands.is_empty() {
        return;
    }
    cands.sort_by_key(|&c| std::cmp::Reverse(folded.size_of(c)));
    for r in existing {
        let Some(cond) = &r.condition else { continue };
        if !r.event.same_as(&new.event) {
            continue;
        }
        let rir = ExprIr::lower(cond).fold();
        if rir.hash_of(rir.root) == folded.hash_of(folded.root) {
            continue;
        }
        let shared = cands.iter().copied().find(|&c| {
            let h = folded.hash_of(c);
            let mut found = false;
            rir.for_each(rir.root, &mut |id| {
                if !found && rir.hash_of(id) == h && rir.subtree_eq(id, &folded, c) {
                    found = true;
                }
            });
            found
        });
        if let Some(node) = shared {
            diags.push(
                Diagnostic::new(
                    Code::W105,
                    &new.name,
                    format!(
                        "predicate `{}` is duplicated from rule `{}` on the same event ({})",
                        folded.disp(node),
                        r.name,
                        new.event
                    ),
                )
                .with_span(folded.render(node))
                .with_help(
                    "the dispatch plan evaluates the shared subexpression once per event \
                     (CSE slot); if the duplication is accidental, factor the predicate \
                     into a single rule",
                ),
            );
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AggFuncIr, Analyzer, AttrIr, EventIr, GroupColumnIr, LatIr};

    fn bounded_lat(name: &str) -> LatIr {
        LatIr {
            name: name.into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "ID".into(),
                },
                alias: "ID".into(),
            }],
            aggregates: vec![AggColumnIr {
                func: AggFuncIr::Max,
                source: Some(AttrIr {
                    class: "Query".into(),
                    attr: "Duration".into(),
                }),
                alias: "D".into(),
                aging: false,
            }],
            bounded: true,
            max_rows: None,
            shards: None,
        }
    }

    fn rule(
        name: &str,
        kind: &str,
        arg: Option<&str>,
        payload: &[&str],
        actions: Vec<ActionIr>,
    ) -> RuleIr {
        RuleIr {
            name: name.into(),
            event: EventIr {
                kind: kind.into(),
                arg: arg.map(|s| s.to_string()),
                payload: payload.iter().map(|s| s.to_string()).collect(),
            },
            condition: None,
            actions,
        }
    }

    #[test]
    fn self_eviction_cycle_is_e004() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&bounded_lat("Top")).is_empty());
        // Feeding the LAT from its own eviction event recurses forever.
        let diags = a.check_rule(&rule(
            "refill",
            "LatEviction",
            Some("Top"),
            &["Evicted(Top)"],
            vec![ActionIr::Insert { lat: "Top".into() }],
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::E004);
        assert!(a.rules().is_empty());
    }

    #[test]
    fn two_rule_timer_cycle_is_e004() {
        let mut a = Analyzer::new();
        assert!(a
            .check_rule(&rule(
                "arm",
                "TimerAlarm",
                Some("tick"),
                &["Timer"],
                vec![ActionIr::SetTimer {
                    timer: "tock".into()
                }],
            ))
            .is_empty());
        let diags = a.check_rule(&rule(
            "rearm",
            "TimerAlarm",
            Some("tock"),
            &["Timer"],
            vec![ActionIr::SetTimer {
                timer: "tick".into(),
            }],
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::E004);
        assert!(diags[0].message.contains("rearm"));
        assert!(diags[0].message.contains("arm"));
    }

    #[test]
    fn eviction_chain_without_cycle_is_clean() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&bounded_lat("A")).is_empty());
        assert!(a.check_lat(&bounded_lat("B")).is_empty());
        assert!(a
            .check_rule(&rule(
                "feed_a",
                "QueryCommit",
                None,
                &["Query"],
                vec![ActionIr::Insert { lat: "A".into() }],
            ))
            .is_empty());
        // A's evictions feed B; B's evictions go nowhere. Terminating chain.
        let diags = a.check_rule(&rule(
            "spill",
            "LatEviction",
            Some("A"),
            &["Evicted(A)"],
            vec![ActionIr::Insert { lat: "B".into() }],
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unbounded_lat_insert_creates_no_edge() {
        let mut a = Analyzer::new();
        let mut lat = bounded_lat("Open");
        lat.bounded = false;
        assert!(a.check_lat(&lat).is_empty());
        // Unbounded LATs never evict, so the "cycle" cannot actually cascade.
        let diags = a.check_rule(&rule(
            "refill",
            "LatEviction",
            Some("Open"),
            &["Evicted(Open)"],
            vec![ActionIr::Insert { lat: "Open".into() }],
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cascade_depth_bound_follows_the_eviction_chain() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&bounded_lat("A")).is_empty());
        assert!(a.check_lat(&bounded_lat("B")).is_empty());
        assert_eq!(a.max_cascade_depth(), 0, "no rules, no cascades");
        assert!(a
            .check_rule(&rule(
                "feed_a",
                "QueryCommit",
                None,
                &["Query"],
                vec![ActionIr::Insert { lat: "A".into() }],
            ))
            .is_empty());
        // Nothing subscribes to A's evictions yet: the insert raises an
        // event no rule handles, so no *rule chain* extends past depth 0.
        assert_eq!(a.max_cascade_depth(), 0);
        assert!(a
            .check_rule(&rule(
                "spill",
                "LatEviction",
                Some("A"),
                &["Evicted(A)"],
                vec![ActionIr::Insert { lat: "B".into() }],
            ))
            .is_empty());
        assert_eq!(a.max_cascade_depth(), 1, "commit -> eviction(A)");
        assert!(a
            .check_rule(&rule(
                "archive",
                "LatEviction",
                Some("B"),
                &["Evicted(B)"],
                vec![ActionIr::SendMail],
            ))
            .is_empty());
        assert_eq!(
            a.max_cascade_depth(),
            2,
            "commit -> eviction(A) -> eviction(B)"
        );
    }

    #[test]
    fn cascade_depth_bound_ignores_unbounded_inserts() {
        let mut a = Analyzer::new();
        let mut lat = bounded_lat("Open");
        lat.bounded = false;
        assert!(a.check_lat(&lat).is_empty());
        assert!(a
            .check_rule(&rule(
                "feed",
                "QueryCommit",
                None,
                &["Query"],
                vec![ActionIr::Insert { lat: "Open".into() }],
            ))
            .is_empty());
        assert!(a
            .check_rule(&rule(
                "never",
                "LatEviction",
                Some("Open"),
                &["Evicted(Open)"],
                vec![ActionIr::SendMail],
            ))
            .is_empty());
        assert_eq!(a.max_cascade_depth(), 0, "unbounded LATs never evict");
    }

    #[test]
    fn shared_predicate_across_same_event_rules_is_w105() {
        let mut a = Analyzer::new();
        let mut first = rule(
            "one",
            "QueryCommit",
            None,
            &["Query"],
            vec![ActionIr::SendMail],
        );
        first.condition = Some(
            sqlcm_sql::parse_expression("Query.Duration > 5 AND Query.User = 'admin'").unwrap(),
        );
        assert!(a.check_rule(&first).is_empty());
        let mut second = rule(
            "two",
            "QueryCommit",
            None,
            &["Query"],
            vec![ActionIr::SendMail],
        );
        second.condition = Some(
            sqlcm_sql::parse_expression("Query.Duration > 5 AND Query.Estimated_Cost > 100")
                .unwrap(),
        );
        let diags = a.check_rule(&second);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W105);
        assert!(diags[0].message.contains("Query.Duration > 5"));
        assert!(diags[0].message.contains("one"));
        // Warnings do not deny admission.
        assert_eq!(a.rules().len(), 2);
    }

    #[test]
    fn shared_predicate_on_different_events_is_clean() {
        let mut a = Analyzer::new();
        let mut first = rule(
            "one",
            "QueryCommit",
            None,
            &["Query"],
            vec![ActionIr::SendMail],
        );
        first.condition = Some(sqlcm_sql::parse_expression("Query.Duration > 5").unwrap());
        assert!(a.check_rule(&first).is_empty());
        let mut second = rule(
            "two",
            "QueryStart",
            None,
            &["Query"],
            vec![ActionIr::SendMail],
        );
        second.condition =
            Some(sqlcm_sql::parse_expression("Query.Duration > 5 AND Query.User = 'x'").unwrap());
        let diags = a.check_rule(&second);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn duplicate_event_and_condition_is_w102() {
        let mut a = Analyzer::new();
        let mut first = rule(
            "one",
            "QueryCommit",
            None,
            &["Query"],
            vec![ActionIr::SendMail],
        );
        first.condition = Some(sqlcm_sql::parse_expression("Query.Duration > 5").unwrap());
        assert!(a.check_rule(&first).is_empty());
        let mut second = first.clone();
        second.name = "two".into();
        let diags = a.check_rule(&second);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W102);
        // Warnings do not deny admission.
        assert_eq!(a.rules().len(), 2);
    }
}
