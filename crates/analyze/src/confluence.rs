//! Order-sensitivity and cascade-amplification analysis (W301 / W302).
//!
//! SQLCM evaluates the rules subscribed to an event synchronously in
//! registration order (§5). Registration order is therefore part of the
//! observable semantics — and two whole classes of surprises hide in it:
//!
//! * **W301 — order-sensitive pair.** If an earlier rule *reads* a LAT
//!   column that a later same-event rule *writes*, the reader observes the
//!   state left by the *previous* event, and swapping the two rules would
//!   change what it sees. Read-after-write (the feed-then-react idiom from
//!   the paper's examples: `Insert` first, outlier check second) is the
//!   intended pattern and stays silent; it is the *write-after-read* order —
//!   usually a registration-order accident — that gets flagged, using the
//!   interference relation from [`crate::effects`].
//! * **W302 — cascade amplification.** Rules trigger rules through
//!   `Insert`→`LatEviction` and `SetTimer`→`TimerAlarm` edges. Cycles are
//!   already denied (E004), but an acyclic graph can still fan out: one
//!   event whose rules feed several bounded LATs, each eviction of which is
//!   handled by several rules, multiplies synchronous work per event. The
//!   pass bounds the worst case — every rule fires, every bounded insert
//!   evicts — and warns when a single event can transitively trigger more
//!   than [`crate::Analyzer::cascade_threshold`] rule evaluations.

use crate::depgraph::raised_events;
use crate::diagnostics::{Code, Diagnostic};
use crate::effects::rule_effects;
use crate::schema::SchemaUniverse;
use crate::{EventIr, RuleIr};

/// W301: warn when the immediately-preceding same-event rule reads columns
/// the new rule writes (swapping the adjacent pair changes behaviour).
pub fn check_order(
    universe: &SchemaUniverse,
    admitted: &[RuleIr],
    new: &RuleIr,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(prev) = admitted.iter().rev().find(|r| r.event.same_as(&new.event)) else {
        return;
    };
    let prev_eff = rule_effects(universe, prev);
    let new_eff = rule_effects(universe, new);
    if let Some(conflict) = prev_eff.reads_what_it_writes(&new_eff) {
        diags.push(
            Diagnostic::new(
                Code::W301,
                &new.name,
                format!(
                    "order-sensitive with the adjacent rule `{}` on {}: {conflict}",
                    prev.name, new.event
                ),
            )
            .with_span(format!("after `{}`", prev.name))
            .with_help(
                "the earlier rule reads state this rule mutates, so it sees the \
                 previous event's value; register the writer first if the reader \
                 should observe this event's update",
            ),
        );
    }
}

/// W302: bound the number of rule evaluations one event can transitively
/// trigger, counting multiplicities (several rules per event, one possible
/// eviction per bounded insert, one alarm per `SetTimer`).
pub fn check_amplification(
    universe: &SchemaUniverse,
    admitted: &[RuleIr],
    new: &RuleIr,
    threshold: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let all: Vec<&RuleIr> = admitted.iter().chain(std::iter::once(new)).collect();

    // Worst-case evaluations triggered by dispatching `event` once. `depth`
    // guards against a cycle in the not-yet-denied candidate set — E004 is
    // reported on this same `check_rule` call and owns that finding, so a
    // cyclic walk sets `cyclic` and the W302 verdict is suppressed.
    fn evals_for(
        universe: &SchemaUniverse,
        all: &[&RuleIr],
        event: &EventIr,
        depth: usize,
        threshold: usize,
        cyclic: &mut bool,
    ) -> usize {
        if depth > all.len() {
            *cyclic = true;
            return 0;
        }
        let mut total = 0usize;
        for rule in all.iter().filter(|r| r.event.same_as(event)) {
            total = total.saturating_add(1);
            for (kind, arg) in raised_events(universe, rule) {
                let raised = EventIr {
                    kind: kind.to_string(),
                    arg: Some(arg),
                    payload: Vec::new(),
                };
                total = total.saturating_add(evals_for(
                    universe,
                    all,
                    &raised,
                    depth + 1,
                    threshold,
                    cyclic,
                ));
            }
            if *cyclic || total > threshold {
                return total; // early out: the bound is already broken
            }
        }
        total
    }

    let mut cyclic = false;
    let total = evals_for(universe, &all, &new.event, 0, threshold, &mut cyclic);
    if !cyclic && total > threshold {
        diags.push(
            Diagnostic::new(
                Code::W302,
                &new.name,
                format!(
                    "one {} event can transitively trigger more than {threshold} rule \
                     evaluations through eviction/timer cascades",
                    new.event
                ),
            )
            .with_span(new.event.to_string())
            .with_help(
                "reduce fan-out (fewer rules per eviction event, unbounded LATs for \
                 pure accumulators) or raise Analyzer::cascade_threshold if the \
                 amplification is intended",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActionIr, AggColumnIr, AggFuncIr, AttrIr, GroupColumnIr, LatIr};

    fn lat(name: &str, bounded: bool) -> LatIr {
        LatIr {
            name: name.into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![AggColumnIr {
                func: AggFuncIr::Count,
                source: None,
                alias: "N".into(),
                aging: false,
            }],
            bounded,
            max_rows: bounded.then_some(10),
            shards: None,
        }
    }

    fn on_commit(name: &str, cond: Option<&str>, actions: Vec<ActionIr>) -> RuleIr {
        RuleIr {
            name: name.into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: cond.map(|c| sqlcm_sql::parse_expression(c).unwrap()),
            actions,
        }
    }

    fn on_eviction(name: &str, of: &str, actions: Vec<ActionIr>) -> RuleIr {
        RuleIr {
            name: name.into(),
            event: EventIr {
                kind: "LatEviction".into(),
                arg: Some(of.into()),
                payload: Vec::new(),
            },
            condition: None,
            actions,
        }
    }

    #[test]
    fn reader_then_writer_is_w301_but_writer_then_reader_is_not() {
        let mut u = SchemaUniverse::builtin();
        assert!(u.register_lat(&lat("L", false)).is_empty());
        let reader = on_commit("reader", Some("L.N > 5"), vec![]);
        let writer = on_commit("writer", None, vec![ActionIr::Insert { lat: "L".into() }]);

        let mut diags = Vec::new();
        check_order(&u, std::slice::from_ref(&reader), &writer, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W301);

        let mut diags = Vec::new();
        check_order(&u, std::slice::from_ref(&writer), &reader, &mut diags);
        assert!(diags.is_empty(), "feed-then-react is the intended idiom");
    }

    #[test]
    fn eviction_fanout_past_threshold_is_w302() {
        let mut u = SchemaUniverse::builtin();
        assert!(u.register_lat(&lat("A", true)).is_empty());
        assert!(u.register_lat(&lat("B", true)).is_empty());
        let mut admitted = vec![on_commit(
            "feed_a",
            None,
            vec![ActionIr::Insert { lat: "A".into() }],
        )];
        for i in 0..4 {
            admitted.push(on_eviction(
                &format!("a_spill{i}"),
                "A",
                vec![ActionIr::Insert { lat: "B".into() }],
            ));
        }
        for i in 0..4 {
            admitted.push(on_eviction(&format!("b_spill{i}"), "B", vec![]));
        }
        let new = on_commit("feed_a2", None, vec![ActionIr::Insert { lat: "A".into() }]);
        // Each commit insert may evict from A (4 rules, each may evict from B:
        // 4 rules) — 2 · (1 + 4 · (1 + 4)) = 42 evaluations.
        let mut diags = Vec::new();
        check_amplification(&u, &admitted, &new, 16, &mut diags);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W302);

        let mut diags = Vec::new();
        check_amplification(&u, &admitted, &new, 64, &mut diags);
        assert!(diags.is_empty(), "under the threshold: no warning");
    }
}
