//! Reference resolution and type checking of rule conditions (E001 / E002).
//!
//! Mirrors the runtime's resolution order exactly: a qualifier that parses as
//! a monitored class name resolves to the in-scope object of that class;
//! anything else is assumed to be a LAT name. The type algebra is permissive
//! where the runtime coerces (INT/FLOAT/TIMESTAMP compare numerically) and
//! strict where the runtime would yield NULL forever (comparing a number with
//! text, LIKE on a non-text value, AND over non-booleans) — those conditions
//! can never fire, so they are rejected at registration.
//!
//! The pass recurses over the shared flat [`ExprIr`] (lowered once per rule
//! in `Analyzer::check_rule`) rather than the AST; spans and messages are
//! rendered through the IR's `disp` adapter, which reprints the exact source
//! expression.

use sqlcm_common::DataType;
use sqlcm_sql::{BinOp, ExprIr, IrOp, NodeId, UnaryOp};

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::{attrs_help, known_classes_help, SchemaUniverse};

/// An inferred static type. `Any` means "unknown / unconstrained" — it arises
/// from NULL literals, parameters, unresolvable references (already reported
/// as E001) and function calls, and suppresses follow-on E002 noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Any,
    T(DataType),
}

impl Ty {
    fn name(self) -> &'static str {
        match self {
            Ty::Any => "UNKNOWN",
            Ty::T(DataType::Int) => "INT",
            Ty::T(DataType::Float) => "FLOAT",
            Ty::T(DataType::Text) => "TEXT",
            Ty::T(DataType::Bool) => "BOOL",
            Ty::T(DataType::Timestamp) => "TIMESTAMP",
            Ty::T(DataType::Blob) => "BLOB",
        }
    }

    fn is_numeric(self) -> bool {
        matches!(
            self,
            Ty::Any | Ty::T(DataType::Int) | Ty::T(DataType::Float) | Ty::T(DataType::Timestamp)
        )
    }

    fn is_boolish(self) -> bool {
        matches!(self, Ty::Any | Ty::T(DataType::Bool))
    }

    fn is_textish(self) -> bool {
        matches!(self, Ty::Any | Ty::T(DataType::Text))
    }
}

/// Can the runtime's `sql_cmp` meaningfully order these two types?
fn comparable(a: Ty, b: Ty) -> bool {
    match (a, b) {
        (Ty::Any, _) | (_, Ty::Any) => true,
        (Ty::T(x), Ty::T(y)) => x == y || (a.is_numeric() && b.is_numeric()),
    }
}

/// Type-check a rule condition, reporting E001/E002 into `diags`. Also
/// rejects conditions whose root type is known not to be boolean (the runtime
/// would evaluate them to NULL and never fire).
pub fn check_condition(
    universe: &SchemaUniverse,
    rule: &str,
    ir: &ExprIr,
    diags: &mut Vec<Diagnostic>,
) {
    let before = diags.len();
    let root = infer(universe, rule, ir, ir.root, diags);
    // Only complain about the root if the subtree itself was clean — a bad
    // reference already explains why the type is off.
    if diags.len() == before {
        if let Ty::T(dt) = root {
            if dt != DataType::Bool {
                diags.push(
                    Diagnostic::new(
                        Code::E002,
                        rule,
                        format!("condition evaluates to {}, not BOOL", root.name()),
                    )
                    .with_span(ir.render(ir.root))
                    .with_help("compare the value against something, e.g. `... > 0`"),
                );
            }
        }
    }
}

/// Infer the static type of node `id`, reporting diagnostics along the way.
pub fn infer(
    universe: &SchemaUniverse,
    rule: &str,
    ir: &ExprIr,
    id: NodeId,
    diags: &mut Vec<Diagnostic>,
) -> Ty {
    match ir.op(id) {
        IrOp::Const(c) => ir.consts[*c as usize].data_type().map_or(Ty::Any, Ty::T),
        IrOp::Ref(r) => {
            let (qualifier, name) = &ir.refs[*r as usize];
            resolve_column(universe, rule, qualifier, name, diags)
        }
        // The runtime's compiler rejects parameters and function calls in rule
        // conditions with its own error; don't double-report here.
        IrOp::Param(_) | IrOp::NamedParam(_) | IrOp::FuncCall { .. } => Ty::Any,
        IrOp::Unary { op, expr } => {
            let t = infer(universe, rule, ir, *expr, diags);
            match op {
                UnaryOp::Neg => {
                    if !t.is_numeric() {
                        diags.push(mismatch(
                            rule,
                            ir,
                            id,
                            format!("cannot negate `{}` ({})", ir.disp(*expr), t.name()),
                        ));
                    }
                    t
                }
                UnaryOp::Not => {
                    if !t.is_boolish() {
                        diags.push(mismatch(
                            rule,
                            ir,
                            id,
                            format!(
                                "NOT operand `{}` is {}, expected BOOL",
                                ir.disp(*expr),
                                t.name()
                            ),
                        ));
                    }
                    Ty::T(DataType::Bool)
                }
            }
        }
        IrOp::Binary { left, op, right } => {
            let lt = infer(universe, rule, ir, *left, diags);
            let rt = infer(universe, rule, ir, *right, diags);
            match op {
                BinOp::And | BinOp::Or => {
                    for (side, t) in [(left, lt), (right, rt)] {
                        if !t.is_boolish() {
                            diags.push(mismatch(
                                rule,
                                ir,
                                id,
                                format!(
                                    "{op} operand `{}` is {}, expected BOOL",
                                    ir.disp(*side),
                                    t.name()
                                ),
                            ));
                        }
                    }
                    Ty::T(DataType::Bool)
                }
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Gt | BinOp::LtEq | BinOp::GtEq => {
                    if !comparable(lt, rt) {
                        diags.push(
                            mismatch(
                                rule,
                                ir,
                                id,
                                format!(
                                    "cannot compare `{}` ({}) with `{}` ({})",
                                    ir.disp(*left),
                                    lt.name(),
                                    ir.disp(*right),
                                    rt.name()
                                ),
                            )
                            .with_help(
                                "the comparison would evaluate to NULL on every event, so the \
                                 rule could never fire",
                            ),
                        );
                    }
                    Ty::T(DataType::Bool)
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    for (side, t) in [(left, lt), (right, rt)] {
                        if !t.is_numeric() {
                            diags.push(mismatch(
                                rule,
                                ir,
                                id,
                                format!(
                                    "arithmetic `{op}` on non-numeric operand `{}` ({})",
                                    ir.disp(*side),
                                    t.name()
                                ),
                            ));
                        }
                    }
                    match (lt, rt) {
                        (Ty::T(DataType::Int), Ty::T(DataType::Int)) => Ty::T(DataType::Int),
                        (Ty::T(DataType::Float), Ty::T(x)) | (Ty::T(x), Ty::T(DataType::Float))
                            if x == DataType::Int || x == DataType::Float =>
                        {
                            Ty::T(DataType::Float)
                        }
                        _ => Ty::Any,
                    }
                }
            }
        }
        // IS NULL accepts every operand type; inference of the operand still
        // reports unknown references.
        IrOp::IsNull { expr, .. } => {
            infer(universe, rule, ir, *expr, diags);
            Ty::T(DataType::Bool)
        }
        IrOp::Like { expr, pattern, .. } => {
            for side in [expr, pattern] {
                let t = infer(universe, rule, ir, *side, diags);
                if !t.is_textish() {
                    diags.push(mismatch(
                        rule,
                        ir,
                        id,
                        format!(
                            "LIKE requires text operands; `{}` is {}",
                            ir.disp(*side),
                            t.name()
                        ),
                    ));
                }
            }
            Ty::T(DataType::Bool)
        }
        IrOp::InList { expr, list, .. } => {
            let t = infer(universe, rule, ir, *expr, diags);
            for member in &ir.lists[*list as usize] {
                let mt = infer(universe, rule, ir, *member, diags);
                if !comparable(t, mt) {
                    diags.push(mismatch(
                        rule,
                        ir,
                        id,
                        format!(
                            "IN list member `{}` ({}) is not comparable with `{}` ({})",
                            ir.disp(*member),
                            mt.name(),
                            ir.disp(*expr),
                            t.name()
                        ),
                    ));
                }
            }
            Ty::T(DataType::Bool)
        }
    }
}

fn mismatch(rule: &str, ir: &ExprIr, id: NodeId, message: String) -> Diagnostic {
    Diagnostic::new(Code::E002, rule, message).with_span(ir.render(id))
}

fn resolve_column(
    universe: &SchemaUniverse,
    rule: &str,
    qualifier: &Option<String>,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) -> Ty {
    let Some(q) = qualifier else {
        diags.push(
            Diagnostic::new(Code::E001, rule, format!("unqualified column `{name}`"))
                .with_span(name.to_string())
                .with_help("qualify the reference as `Class.Attribute` or `Lat.Column`"),
        );
        return Ty::Any;
    };
    if let Some(class) = universe.class(q) {
        return match class.attr_type(name) {
            Some(t) => Ty::T(t),
            None => {
                diags.push(
                    Diagnostic::new(
                        Code::E001,
                        rule,
                        format!("class {} has no attribute `{name}`", class.name),
                    )
                    .with_span(format!("{q}.{name}"))
                    .with_help(attrs_help(class)),
                );
                Ty::Any
            }
        };
    }
    // Not a class ⇒ assumed LAT reference, exactly like the runtime.
    let Some(lat) = universe.lat(q) else {
        diags.push(
            Diagnostic::new(Code::E001, rule, format!("unknown class or LAT `{q}`"))
                .with_span(format!("{q}.{name}"))
                .with_help(format!(
                    "{}; LATs must be defined before rules that reference them",
                    known_classes_help(universe)
                )),
        );
        return Ty::Any;
    };
    match lat.column(name) {
        Some(col) => col.ty.map_or(Ty::Any, Ty::T),
        None => {
            let cols: Vec<&str> = lat.columns.iter().map(|c| c.name.as_str()).collect();
            diags.push(
                Diagnostic::new(
                    Code::E001,
                    rule,
                    format!("LAT {} has no column `{name}`", lat.name),
                )
                .with_span(format!("{q}.{name}"))
                .with_help(format!("{} columns: {}", lat.name, cols.join(", "))),
            );
            Ty::Any
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlcm_sql::parse_expression;

    fn check(cond: &str) -> Vec<Diagnostic> {
        let universe = SchemaUniverse::builtin();
        let mut diags = Vec::new();
        let ir = ExprIr::lower(&parse_expression(cond).unwrap());
        check_condition(&universe, "t", &ir, &mut diags);
        diags
    }

    #[test]
    fn numeric_comparisons_are_clean() {
        assert!(check("Query.Duration > 5").is_empty());
        assert!(check("Query.Duration > Query.Estimated_Cost * 2").is_empty());
        assert!(check("Query.Start_Time > 100").is_empty());
        assert!(check("Query.User = 'admin' AND Query.Duration >= 0.5").is_empty());
    }

    #[test]
    fn unknown_attribute_is_e001() {
        let diags = check("Query.Durations > 5");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E001);
        assert!(diags[0].message.contains("no attribute"));
    }

    #[test]
    fn numeric_vs_text_comparison_is_e002() {
        let diags = check("Query.Duration = 'slow'");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E002);
    }

    #[test]
    fn non_boolean_root_is_e002() {
        let diags = check("Query.Duration + 1");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E002);
        assert!(diags[0].message.contains("not BOOL"));
    }

    #[test]
    fn like_on_number_is_e002() {
        let diags = check("Query.Duration LIKE '%slow%'");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::E002);
    }
}
