//! Scope analysis of rule conditions: dead class references (W101) and
//! unjoinable LAT references (E003).
//!
//! Both checks encode the engine's evaluation contract precisely:
//!
//! * A class referenced by the condition but absent from the event payload is
//!   resolved by **iterating** a live registry — and registries exist only
//!   for `Query` (active queries), `Blocker`/`Blocked` (blocked pairs) and
//!   `Table` (the catalog). Any other out-of-payload class makes the engine
//!   skip the rule entirely: the rule can never fire (**W101**).
//!
//! * A LAT reference is bound by building the LAT's grouping key from the
//!   in-scope object of the LAT's *source class*. That object exists only
//!   when the source class is in the payload, or when it is iterable **and
//!   the condition names it directly** (iteration sets are built from the
//!   classes the condition references, not from the LATs it probes). When
//!   neither holds, the implicit ∃ of §5.2 fails on every event — missing
//!   row ⇒ false — and the condition is statically unsatisfiable (**E003**).

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::SchemaUniverse;
use crate::{expr_refs, RuleIr};

pub fn check_rule(universe: &SchemaUniverse, rule: &RuleIr, diags: &mut Vec<Diagnostic>) {
    let Some(cond) = &rule.condition else {
        return;
    };
    let (classes, lats) = expr_refs(universe, &sqlcm_sql::ExprIr::lower(cond));
    let in_payload = |c: &str| rule.event.payload.iter().any(|p| p.eq_ignore_ascii_case(c));

    for class in &classes {
        let schema = universe.class(class).expect("canonicalized by expr_refs");
        if !in_payload(class) && !schema.iterable {
            diags.push(
                Diagnostic::new(
                    Code::W101,
                    &rule.name,
                    format!(
                        "rule can never fire: condition references {class}, which is not in \
                         the {} payload and has no iterable registry",
                        rule.event
                    ),
                )
                .with_span(format!("{class}.*"))
                .with_help(format!(
                    "register the rule on an event whose payload carries {class}"
                )),
            );
        }
    }

    for lat_name in &lats {
        // Unknown LATs are E001 territory (typeck); nothing to join against.
        let Some(lat) = universe.lat(lat_name) else {
            continue;
        };
        let source = lat.source_class.clone();
        if source.is_empty() {
            continue;
        }
        let iterable = universe.class(&source).map(|c| c.iterable).unwrap_or(false);
        let named_in_condition = classes.iter().any(|c| c.eq_ignore_ascii_case(&source));
        if in_payload(&source) || (iterable && named_in_condition) {
            continue;
        }
        let help = if iterable {
            format!(
                "reference a {source} attribute in the condition so the engine iterates live \
                 {source} objects, or register the rule on a {source}-producing event"
            )
        } else {
            format!("register the rule on an event whose payload carries {source}")
        };
        diags.push(
            Diagnostic::new(
                Code::E003,
                &rule.name,
                format!(
                    "LAT {} groups by {source} attributes, but no {source} object is ever in \
                     scope for {}: the lookup finds no row and the condition is statically \
                     false",
                    lat.name, rule.event
                ),
            )
            .with_span(format!("{lat_name}.*"))
            .with_help(help),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AggFuncIr, Analyzer, AttrIr, EventIr, GroupColumnIr, LatIr};

    fn duration_lat() -> LatIr {
        LatIr {
            name: "Duration_LAT".into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![AggColumnIr {
                func: AggFuncIr::Avg,
                source: Some(AttrIr {
                    class: "Query".into(),
                    attr: "Duration".into(),
                }),
                alias: "Avg_Duration".into(),
                aging: false,
            }],
            bounded: false,
            max_rows: None,
            shards: None,
        }
    }

    fn rule_on(event: &str, payload: &[&str], cond: &str) -> RuleIr {
        RuleIr {
            name: "t".into(),
            event: EventIr {
                kind: event.into(),
                arg: None,
                payload: payload.iter().map(|s| s.to_string()).collect(),
            },
            condition: Some(sqlcm_sql::parse_expression(cond).unwrap()),
            actions: vec![],
        }
    }

    /// Admit a feeder rule so probes of `Duration_LAT` aggregates are not
    /// flagged as reads of a never-written column (W203) — this module only
    /// exercises the scope checks.
    fn admit_feeder(a: &mut Analyzer) {
        let feed = RuleIr {
            name: "feed".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: None,
            actions: vec![crate::ActionIr::Insert {
                lat: "Duration_LAT".into(),
            }],
        };
        assert!(a.check_rule(&feed).is_empty());
    }

    #[test]
    fn lat_probe_from_source_payload_is_clean() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&duration_lat()).is_empty());
        admit_feeder(&mut a);
        let diags = a.check_rule(&rule_on(
            "QueryCommit",
            &["Query"],
            "Query.Duration > 5 * Duration_LAT.Avg_Duration",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn lat_probe_without_source_in_scope_is_e003() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&duration_lat()).is_empty());
        admit_feeder(&mut a);
        // TxnCommit carries only Transaction; the condition never names Query,
        // so no Query object is ever in scope to build the grouping key.
        let diags = a.check_rule(&rule_on(
            "TxnCommit",
            &["Transaction"],
            "Duration_LAT.Avg_Duration > 5",
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::E003);
    }

    #[test]
    fn lat_probe_with_iterated_source_is_clean() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&duration_lat()).is_empty());
        admit_feeder(&mut a);
        // Query is named directly, so the engine iterates active queries and
        // the probe binds per iterated object.
        let diags = a.check_rule(&rule_on(
            "TxnCommit",
            &["Transaction"],
            "Query.Duration > 1 AND Duration_LAT.Avg_Duration > 5",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_iterable_class_outside_payload_is_w101() {
        let mut a = Analyzer::new();
        let diags = a.check_rule(&rule_on(
            "QueryCommit",
            &["Query"],
            "Session.Success = FALSE",
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W101);
    }

    #[test]
    fn iterable_class_outside_payload_is_clean() {
        let mut a = Analyzer::new();
        let diags = a.check_rule(&rule_on(
            "TxnCommit",
            &["Transaction"],
            "Table.Row_Count > 1000",
        ));
        assert!(diags.is_empty(), "{diags:?}");
    }
}
