//! Static per-firing cost estimate (W201).
//!
//! The paper's central argument is that monitoring must have *low and
//! controllable* overhead (§2.1, Figure 2). The runtime controls what it can
//! — compiled conditions, in-memory LATs — but a rule author can still attach
//! arbitrarily heavy work to a hot event (persisting a LAT to a table on
//! every `QueryCommit`, say). This pass attaches a unitless cost score to
//! each rule — roughly "hash probes per firing" — and warns when it crosses
//! the analyzer's threshold.
//!
//! The model is deliberately coarse but deterministic:
//!
//! * each distinct LAT probed by the condition: `1 + aging aggregates` (an
//!   aging read folds the block ring);
//! * `Insert`: `1 + aggregate columns + 2 × aging aggregates + 1 if bounded`
//!   (aging inserts touch the ring twice: append + expire; bounded LATs pay
//!   ordering/eviction bookkeeping);
//! * `Reset`, `SetTimer`, `Cancel`: 1;
//! * `PersistObject`: 4, `PersistLat`: 8 (synchronous table writes);
//! * `SendMail`, `RunExternal`: 6 (sink formatting and queueing).
//!
//! A second lint here (W204) flags the sharpest instance of the same
//! problem regardless of total score: an *unconditional* external action
//! (`SendMail`/`RunExternal`) attached to a hot event class. With no
//! condition to thin the firings, every single event pays the sink — and
//! under sink failure, every single event feeds the circuit breaker.
//!
//! A third lint (W205) mirrors the runtime's dispatch-time guard index: the
//! monitor prunes a rule without evaluating it when a conjunct of its
//! condition (`attr = const`, `attr IN (…)`, `attr <op> const` over payload
//! attributes) is violated by the event. [`rule_indexability`] reproduces
//! that extraction statically so authors can see, per rule, whether dispatch
//! cost scales with *matching* rules or with *registered* rules — and W205
//! fires when a rule on a hot event class reads only payload attributes yet
//! yields no guard atom, i.e. it is residual for a fixable reason.

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::SchemaUniverse;
use crate::{expr_refs, ActionIr, RuleIr};
use sqlcm_common::Value;
use sqlcm_sql::{BinOp, ExprIr, IrOp, NodeId, UnaryOp};

/// Default threshold above which [`Code::W201`] fires.
pub const DEFAULT_COST_THRESHOLD: u32 = 16;

/// Estimate the per-firing cost of a rule; returns the total and a
/// human-readable breakdown.
pub fn rule_cost(universe: &SchemaUniverse, rule: &RuleIr) -> (u32, Vec<String>) {
    let mut total = 0u32;
    let mut parts = Vec::new();
    if let Some(cond) = &rule.condition {
        let (_, lats) = expr_refs(universe, &sqlcm_sql::ExprIr::lower(cond));
        for name in lats {
            let schema = universe.lat(&name);
            let c = match schema {
                Some(schema) => 1 + schema.aging_aggregates as u32,
                None => 1,
            };
            total += c;
            // The dispatch plan hoists a lookup to event level when the LAT's
            // key class is in the event payload: rules on the same event then
            // share one row snapshot, so the probe cost amortizes across the
            // ruleset instead of accruing per rule. Surfaced here so authors
            // can see which probes the runtime de-duplicates.
            let hoisted = schema.is_some_and(|sc| {
                rule.event
                    .payload
                    .iter()
                    .any(|p| p.eq_ignore_ascii_case(&sc.source_class))
            });
            if hoisted {
                parts.push(format!("probe {name}: {c} (hoisted: shared per event)"));
            } else {
                parts.push(format!("probe {name}: {c}"));
            }
        }
    }
    for action in &rule.actions {
        let c = match action {
            ActionIr::Insert { lat } => match universe.lat(lat) {
                Some(schema) => {
                    1 + schema.aggregate_count as u32
                        + 2 * schema.aging_aggregates as u32
                        + u32::from(schema.bounded)
                }
                None => 2,
            },
            ActionIr::Reset { .. } | ActionIr::SetTimer { .. } | ActionIr::Cancel { .. } => 1,
            ActionIr::PersistObject { .. } => 4,
            ActionIr::PersistLat { .. } => 8,
            ActionIr::SendMail | ActionIr::RunExternal => 6,
        };
        total += c;
        parts.push(format!("{}: {c}", action_name(action)));
    }
    (total, parts)
}

fn action_name(action: &ActionIr) -> &'static str {
    match action {
        ActionIr::Insert { .. } => "Insert",
        ActionIr::Reset { .. } => "Reset",
        ActionIr::PersistLat { .. } => "PersistLat",
        ActionIr::PersistObject { .. } => "PersistObject",
        ActionIr::SetTimer { .. } => "SetTimer",
        ActionIr::Cancel { .. } => "Cancel",
        ActionIr::SendMail => "SendMail",
        ActionIr::RunExternal => "RunExternal",
    }
}

/// Warn when the rule's estimated per-firing cost exceeds `threshold`.
pub fn check_rule(
    universe: &SchemaUniverse,
    rule: &RuleIr,
    threshold: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let (total, parts) = rule_cost(universe, rule);
    if total > threshold {
        diags.push(
            Diagnostic::new(
                Code::W201,
                &rule.name,
                format!(
                    "estimated per-firing cost {total} exceeds threshold {threshold} \
                     ({})",
                    parts.join(", ")
                ),
            )
            .with_help(
                "heavy actions on hot events defeat the low-overhead design; move persists \
                 and external actions behind a timer rule, or raise the analyzer threshold \
                 if the event is rare",
            ),
        );
    }
}

/// Event classes considered "hot": fired on the per-query / per-transaction
/// path, where rates are bounded only by engine throughput. Session
/// lifecycle (`Login`/`Logout`), blocking, timer, and monitor events are
/// orders of magnitude rarer and excluded.
fn is_hot_event(kind: &str) -> bool {
    kind.starts_with("Query") || kind.starts_with("Txn")
}

/// Warn (W204) when a rule attaches an unconditional external action to a
/// hot event class.
pub fn check_unconditional_external(rule: &RuleIr, diags: &mut Vec<Diagnostic>) {
    if rule.condition.is_some() || !is_hot_event(&rule.event.kind) {
        return;
    }
    for action in &rule.actions {
        if matches!(action, ActionIr::SendMail | ActionIr::RunExternal) {
            diags.push(
                Diagnostic::new(
                    Code::W204,
                    &rule.name,
                    format!(
                        "unconditional {} on hot event {}: every event pays the \
                         external-sink cost",
                        action_name(action),
                        rule.event.kind
                    ),
                )
                .with_span(action_name(action))
                .with_help(
                    "add a condition to thin the firings, or move the action behind a \
                     timer rule that aggregates over a window",
                ),
            );
        }
    }
}

// ---------------------------------------------------------- indexability

/// Static verdict: can the runtime's guard index prune this rule, and if
/// not, why is it always evaluated?
///
/// Mirrors the extraction the dispatch plan performs at build time (one
/// guard per rule, first equality/`IN` conjunct wins, else the first ranged
/// attribute), so the lint output matches what `telemetry.matching` will
/// report for the same ruleset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Indexability {
    /// The guard index can prune the rule; describes the extracted atom.
    Indexable(String),
    /// The rule sits in the always-evaluate residual set.
    Residual(Residual),
}

/// Why a rule is residual (never pruned by the guard index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residual {
    /// No condition: the rule fires on every event of its class.
    Unconditional,
    /// The condition reads LAT state, which mutates mid-stream and can
    /// error; a violated payload guard cannot prove it false.
    ReadsLat,
    /// The condition reads a class outside the event payload (an iterated
    /// class), so one payload probe cannot stand in for all combinations.
    NonPayloadClass,
    /// The condition contains arithmetic or a function call that can raise
    /// an error; under the error contract the rule must run to surface it.
    FallibleExpr,
    /// Payload-only and infallible, but no top-level conjunct has an
    /// indexable shape (`attr = const`, `attr IN (…)`, `attr <op> const`).
    NoGuardAtom,
}

impl Residual {
    pub fn describe(self) -> &'static str {
        match self {
            Residual::Unconditional => "no condition — fires on every event of its class",
            Residual::ReadsLat => "condition reads LAT state, which a payload guard cannot vouch for",
            Residual::NonPayloadClass => "condition reads a class outside the event payload",
            Residual::FallibleExpr => {
                "condition contains arithmetic or a function call that can error"
            }
            Residual::NoGuardAtom => {
                "no top-level conjunct is an indexable atom (attr = const, attr IN (…), attr <op> const)"
            }
        }
    }
}

/// Classify one rule the way the runtime's guard index does.
pub fn rule_indexability(universe: &SchemaUniverse, rule: &RuleIr) -> Indexability {
    let Some(cond) = &rule.condition else {
        return Indexability::Residual(Residual::Unconditional);
    };
    // Fold first: the runtime classifies the *compiled* condition, where
    // constant arithmetic has already been evaluated away, so `x > 1 + 2`
    // must index the same as `x > 3`.
    let ir = ExprIr::lower(cond).fold();
    let (classes, lats) = expr_refs(universe, &ir);
    if !lats.is_empty() {
        return Indexability::Residual(Residual::ReadsLat);
    }
    if !classes
        .iter()
        .all(|c| rule.event.payload.iter().any(|p| p.eq_ignore_ascii_case(c)))
    {
        return Indexability::Residual(Residual::NonPayloadClass);
    }
    // Whole-arena fallibility scan: a fallible node anywhere — even under a
    // never-taken branch — keeps the rule residual, because the VM's error
    // contract evaluates both AND/OR operands unless provably infallible.
    for op in &ir.ops {
        match op {
            IrOp::Unary {
                op: UnaryOp::Neg, ..
            } => return Indexability::Residual(Residual::FallibleExpr),
            IrOp::Binary {
                op: BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div,
                ..
            } => return Indexability::Residual(Residual::FallibleExpr),
            IrOp::FuncCall { .. } => return Indexability::Residual(Residual::FallibleExpr),
            _ => {}
        }
    }
    let mut conj = Vec::new();
    conjuncts(&ir, ir.root, &mut conj);
    // First equality/IN atom wins (a point probe beats a range sweep);
    // otherwise the first ranged attribute carries the guard.
    let mut range: Option<String> = None;
    for id in conj {
        match guard_atom(universe, &ir, id) {
            Some(GuardAtom::Eq(desc)) => return Indexability::Indexable(desc),
            Some(GuardAtom::Range(desc)) => {
                range.get_or_insert(desc);
            }
            None => {}
        }
    }
    match range {
        Some(desc) => Indexability::Indexable(desc),
        None => Indexability::Residual(Residual::NoGuardAtom),
    }
}

enum GuardAtom {
    Eq(String),
    Range(String),
}

/// Split the top-level `AND` chain into conjunct roots.
fn conjuncts(ir: &ExprIr, id: NodeId, out: &mut Vec<NodeId>) {
    if let IrOp::Binary {
        left,
        op: BinOp::And,
        right,
    } = ir.op(id)
    {
        conjuncts(ir, *left, out);
        conjuncts(ir, *right, out);
    } else {
        out.push(id);
    }
}

/// The canonical `Class.Attr` spelling of a qualified payload reference, or
/// `None` when the node is not one.
fn qualified_ref(universe: &SchemaUniverse, ir: &ExprIr, id: NodeId) -> Option<String> {
    let IrOp::Ref(r) = ir.op(id) else { return None };
    let (qualifier, name) = &ir.refs[*r as usize];
    let q = qualifier.as_ref()?;
    let class = universe.class(q)?;
    Some(format!("{}.{}", class.name, name))
}

/// Lift one conjunct into a guard atom, if it has an indexable shape.
fn guard_atom(universe: &SchemaUniverse, ir: &ExprIr, id: NodeId) -> Option<GuardAtom> {
    match ir.op(id) {
        IrOp::Binary { left, op, right } => {
            let (attr, cval, op) = match (ir.op(*left), ir.op(*right)) {
                (IrOp::Ref(_), IrOp::Const(c)) => (
                    qualified_ref(universe, ir, *left)?,
                    &ir.consts[*c as usize],
                    *op,
                ),
                (IrOp::Const(c), IrOp::Ref(_)) => (
                    qualified_ref(universe, ir, *right)?,
                    &ir.consts[*c as usize],
                    flip(*op)?,
                ),
                _ => return None,
            };
            match op {
                BinOp::Eq => Some(GuardAtom::Eq(format!("equality on {attr}"))),
                BinOp::Lt | BinOp::Gt | BinOp::LtEq | BinOp::GtEq => {
                    // Range guards index numeric bounds only, same as the
                    // runtime (NaN would poison the sweep order).
                    match cval {
                        Value::Int(_) => {}
                        Value::Float(f) if !f.is_nan() => {}
                        _ => return None,
                    }
                    Some(GuardAtom::Range(format!("range on {attr}")))
                }
                _ => None,
            }
        }
        IrOp::InList {
            expr,
            list,
            negated: false,
        } => {
            let attr = qualified_ref(universe, ir, *expr)?;
            let all_const = ir.lists[*list as usize]
                .iter()
                .all(|m| matches!(ir.op(*m), IrOp::Const(_)));
            all_const.then(|| GuardAtom::Eq(format!("membership on {attr}")))
        }
        _ => None,
    }
}

/// Mirror of the comparison with operands swapped (`5 < attr` ⇒ `attr > 5`).
fn flip(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Eq => BinOp::Eq,
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::GtEq => BinOp::LtEq,
        _ => return None,
    })
}

/// Warn (W205) when a rule on a hot event class has a payload-only condition
/// the guard index cannot use — the fixable flavour of residual.
///
/// Deliberately narrow: LAT-reading and iterated-class rules are residual by
/// design (that is what monitoring rules look like), and unconditional rules
/// are W204's territory. Only `FallibleExpr` and `NoGuardAtom` mean the
/// author could reshape the condition and get pruning for free.
pub fn check_unindexable(universe: &SchemaUniverse, rule: &RuleIr, diags: &mut Vec<Diagnostic>) {
    if !is_hot_event(&rule.event.kind) {
        return;
    }
    let verdict = rule_indexability(universe, rule);
    if let Indexability::Residual(r @ (Residual::FallibleExpr | Residual::NoGuardAtom)) = verdict {
        diags.push(
            Diagnostic::new(
                Code::W205,
                &rule.name,
                format!(
                    "condition on hot event {} cannot be guard-indexed: {} — the rule is \
                     evaluated on every event instead of being pruned",
                    rule.event.kind,
                    r.describe()
                ),
            )
            .with_help(
                "add a selective leading conjunct the index can use (attr = const, \
                 attr IN (…), or attr <op> const on a payload attribute), or accept the \
                 always-evaluate cost if the rule must see every event",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AggFuncIr, Analyzer, AttrIr, EventIr, GroupColumnIr, LatIr};

    fn aging_lat() -> LatIr {
        LatIr {
            name: "Win".into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![
                AggColumnIr {
                    func: AggFuncIr::Count,
                    source: None,
                    alias: "N".into(),
                    aging: true,
                },
                AggColumnIr {
                    func: AggFuncIr::Avg,
                    source: Some(AttrIr {
                        class: "Query".into(),
                        attr: "Duration".into(),
                    }),
                    alias: "Avg_D".into(),
                    aging: true,
                },
            ],
            bounded: true,
            max_rows: None,
            shards: None,
        }
    }

    #[test]
    fn cost_model_is_deterministic() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        let rule = RuleIr {
            name: "heavy".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Win.Avg_D > 1").unwrap()),
            actions: vec![
                ActionIr::Insert { lat: "Win".into() },
                ActionIr::PersistLat {
                    lat: "Win".into(),
                    table: "t".into(),
                },
            ],
        };
        // probe Win: 1 + 2 aging = 3; Insert: 1 + 2 aggs + 2*2 aging + 1 bounded = 8;
        // PersistLat: 8. Total 19.
        let (total, parts) = rule_cost(a.universe(), &rule);
        assert_eq!(total, 19);
        // The probe is keyed by Query, which is in the QueryCommit payload:
        // the dispatch plan hoists it, and the breakdown says so.
        assert!(
            parts[0].contains("(hoisted: shared per event)"),
            "{parts:?}"
        );
    }

    #[test]
    fn probe_outside_event_payload_is_not_marked_hoisted() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        let rule = RuleIr {
            name: "timer_probe".into(),
            event: EventIr {
                kind: "TimerAlarm".into(),
                arg: Some("t".into()),
                payload: vec!["Timer".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Win.Avg_D > 1").unwrap()),
            actions: vec![],
        };
        let (_, parts) = rule_cost(a.universe(), &rule);
        assert!(!parts[0].contains("hoisted"), "{parts:?}");
    }

    #[test]
    fn heavy_rule_is_w201_and_light_rule_is_clean() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        let mut rule = RuleIr {
            name: "heavy".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Win.Avg_D > 1").unwrap()),
            actions: vec![
                ActionIr::Insert { lat: "Win".into() },
                ActionIr::PersistLat {
                    lat: "Win".into(),
                    table: "t".into(),
                },
            ],
        };
        let diags = a.check_rule(&rule);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W201);
        assert!(diags[0].message.contains("19"));

        // probe 3 + insert 8 = 11 <= 16: below threshold. The condition also
        // changes so the admitted "heavy" rule doesn't trip W102. (The pair is
        // legitimately order-sensitive — heavy reads Avg_D, light writes it —
        // so only the cost verdict is asserted here.)
        rule.name = "light".into();
        rule.actions = vec![ActionIr::Insert { lat: "Win".into() }];
        rule.condition = Some(sqlcm_sql::parse_expression("Win.Avg_D > 2").unwrap());
        let diags = a.check_rule(&rule);
        assert!(diags.iter().all(|d| d.code != Code::W201), "{diags:?}");
    }

    fn hot_rule(name: &str, cond: Option<&str>) -> RuleIr {
        RuleIr {
            name: name.into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: cond.map(|c| sqlcm_sql::parse_expression(c).unwrap()),
            actions: vec![ActionIr::SendMail],
        }
    }

    fn verdict(cond: Option<&str>) -> Indexability {
        let a = Analyzer::new();
        rule_indexability(a.universe(), &hot_rule("r", cond))
    }

    #[test]
    fn indexability_mirrors_the_runtime_extraction() {
        // Equality and membership index, and equality wins over a range.
        assert_eq!(
            verdict(Some("Query.User = 'alice'")),
            Indexability::Indexable("equality on Query.User".into())
        );
        assert_eq!(
            verdict(Some("Query.Duration > 2 AND Query.User = 'alice'")),
            Indexability::Indexable("equality on Query.User".into())
        );
        assert_eq!(
            verdict(Some("Query.Logical_Signature IN (1, 2, 3)")),
            Indexability::Indexable("membership on Query.Logical_Signature".into())
        );
        // Flipped operands and folded constant arithmetic still index.
        assert_eq!(
            verdict(Some("3 < Query.Duration")),
            Indexability::Indexable("range on Query.Duration".into())
        );
        assert_eq!(
            verdict(Some("Query.Duration > 1 + 2")),
            Indexability::Indexable("range on Query.Duration".into())
        );
    }

    #[test]
    fn residual_reasons_match_the_runtime() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        assert_eq!(
            verdict(None),
            Indexability::Residual(Residual::Unconditional)
        );
        assert_eq!(
            rule_indexability(a.universe(), &hot_rule("r", Some("Win.Avg_D > 1"))),
            Indexability::Residual(Residual::ReadsLat)
        );
        // Live (unfolded) arithmetic and LIKE-only conditions stay residual.
        assert_eq!(
            verdict(Some("Query.Duration - Query.Estimated_Cost > 1")),
            Indexability::Residual(Residual::FallibleExpr)
        );
        assert_eq!(
            verdict(Some("Query.Query_Text LIKE '%DROP%'")),
            Indexability::Residual(Residual::NoGuardAtom)
        );
        // A disjunction has no top-level conjunct to violate.
        assert_eq!(
            verdict(Some("Query.User = 'a' OR Query.User = 'b'")),
            Indexability::Residual(Residual::NoGuardAtom)
        );
    }

    #[test]
    fn w205_fires_only_for_fixable_hot_event_residuals() {
        let mut a = Analyzer::new();
        let diags = a.check_rule(&hot_rule(
            "liketail",
            Some("Query.Query_Text LIKE '%DROP%'"),
        ));
        assert_eq!(
            diags.iter().filter(|d| d.code == Code::W205).count(),
            1,
            "{diags:?}"
        );

        // Indexable hot rule: clean.
        let diags = a.check_rule(&hot_rule("eq", Some("Query.User = 'alice'")));
        assert!(diags.iter().all(|d| d.code != Code::W205), "{diags:?}");

        // LAT-reading hot rule: residual by design, not flagged.
        assert!(a.check_lat(&aging_lat()).is_empty());
        let diags = a.check_rule(&hot_rule("latread", Some("Win.Avg_D > 3")));
        assert!(diags.iter().all(|d| d.code != Code::W205), "{diags:?}");

        // Unindexable condition on a cold event: not flagged.
        let mut cold = hot_rule("cold", Some("Session.User LIKE 'svc%'"));
        cold.event = EventIr {
            kind: "Logout".into(),
            arg: None,
            payload: vec!["Session".into()],
        };
        let diags = a.check_rule(&cold);
        assert!(diags.iter().all(|d| d.code != Code::W205), "{diags:?}");
    }
}
