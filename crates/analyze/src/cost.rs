//! Static per-firing cost estimate (W201).
//!
//! The paper's central argument is that monitoring must have *low and
//! controllable* overhead (§2.1, Figure 2). The runtime controls what it can
//! — compiled conditions, in-memory LATs — but a rule author can still attach
//! arbitrarily heavy work to a hot event (persisting a LAT to a table on
//! every `QueryCommit`, say). This pass attaches a unitless cost score to
//! each rule — roughly "hash probes per firing" — and warns when it crosses
//! the analyzer's threshold.
//!
//! The model is deliberately coarse but deterministic:
//!
//! * each distinct LAT probed by the condition: `1 + aging aggregates` (an
//!   aging read folds the block ring);
//! * `Insert`: `1 + aggregate columns + 2 × aging aggregates + 1 if bounded`
//!   (aging inserts touch the ring twice: append + expire; bounded LATs pay
//!   ordering/eviction bookkeeping);
//! * `Reset`, `SetTimer`, `Cancel`: 1;
//! * `PersistObject`: 4, `PersistLat`: 8 (synchronous table writes);
//! * `SendMail`, `RunExternal`: 6 (sink formatting and queueing).
//!
//! A second lint here (W204) flags the sharpest instance of the same
//! problem regardless of total score: an *unconditional* external action
//! (`SendMail`/`RunExternal`) attached to a hot event class. With no
//! condition to thin the firings, every single event pays the sink — and
//! under sink failure, every single event feeds the circuit breaker.

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::SchemaUniverse;
use crate::{expr_refs, ActionIr, RuleIr};

/// Default threshold above which [`Code::W201`] fires.
pub const DEFAULT_COST_THRESHOLD: u32 = 16;

/// Estimate the per-firing cost of a rule; returns the total and a
/// human-readable breakdown.
pub fn rule_cost(universe: &SchemaUniverse, rule: &RuleIr) -> (u32, Vec<String>) {
    let mut total = 0u32;
    let mut parts = Vec::new();
    if let Some(cond) = &rule.condition {
        let (_, lats) = expr_refs(universe, &sqlcm_sql::ExprIr::lower(cond));
        for name in lats {
            let schema = universe.lat(&name);
            let c = match schema {
                Some(schema) => 1 + schema.aging_aggregates as u32,
                None => 1,
            };
            total += c;
            // The dispatch plan hoists a lookup to event level when the LAT's
            // key class is in the event payload: rules on the same event then
            // share one row snapshot, so the probe cost amortizes across the
            // ruleset instead of accruing per rule. Surfaced here so authors
            // can see which probes the runtime de-duplicates.
            let hoisted = schema.is_some_and(|sc| {
                rule.event
                    .payload
                    .iter()
                    .any(|p| p.eq_ignore_ascii_case(&sc.source_class))
            });
            if hoisted {
                parts.push(format!("probe {name}: {c} (hoisted: shared per event)"));
            } else {
                parts.push(format!("probe {name}: {c}"));
            }
        }
    }
    for action in &rule.actions {
        let c = match action {
            ActionIr::Insert { lat } => match universe.lat(lat) {
                Some(schema) => {
                    1 + schema.aggregate_count as u32
                        + 2 * schema.aging_aggregates as u32
                        + u32::from(schema.bounded)
                }
                None => 2,
            },
            ActionIr::Reset { .. } | ActionIr::SetTimer { .. } | ActionIr::Cancel { .. } => 1,
            ActionIr::PersistObject { .. } => 4,
            ActionIr::PersistLat { .. } => 8,
            ActionIr::SendMail | ActionIr::RunExternal => 6,
        };
        total += c;
        parts.push(format!("{}: {c}", action_name(action)));
    }
    (total, parts)
}

fn action_name(action: &ActionIr) -> &'static str {
    match action {
        ActionIr::Insert { .. } => "Insert",
        ActionIr::Reset { .. } => "Reset",
        ActionIr::PersistLat { .. } => "PersistLat",
        ActionIr::PersistObject { .. } => "PersistObject",
        ActionIr::SetTimer { .. } => "SetTimer",
        ActionIr::Cancel { .. } => "Cancel",
        ActionIr::SendMail => "SendMail",
        ActionIr::RunExternal => "RunExternal",
    }
}

/// Warn when the rule's estimated per-firing cost exceeds `threshold`.
pub fn check_rule(
    universe: &SchemaUniverse,
    rule: &RuleIr,
    threshold: u32,
    diags: &mut Vec<Diagnostic>,
) {
    let (total, parts) = rule_cost(universe, rule);
    if total > threshold {
        diags.push(
            Diagnostic::new(
                Code::W201,
                &rule.name,
                format!(
                    "estimated per-firing cost {total} exceeds threshold {threshold} \
                     ({})",
                    parts.join(", ")
                ),
            )
            .with_help(
                "heavy actions on hot events defeat the low-overhead design; move persists \
                 and external actions behind a timer rule, or raise the analyzer threshold \
                 if the event is rare",
            ),
        );
    }
}

/// Event classes considered "hot": fired on the per-query / per-transaction
/// path, where rates are bounded only by engine throughput. Session
/// lifecycle (`Login`/`Logout`), blocking, timer, and monitor events are
/// orders of magnitude rarer and excluded.
fn is_hot_event(kind: &str) -> bool {
    kind.starts_with("Query") || kind.starts_with("Txn")
}

/// Warn (W204) when a rule attaches an unconditional external action to a
/// hot event class.
pub fn check_unconditional_external(rule: &RuleIr, diags: &mut Vec<Diagnostic>) {
    if rule.condition.is_some() || !is_hot_event(&rule.event.kind) {
        return;
    }
    for action in &rule.actions {
        if matches!(action, ActionIr::SendMail | ActionIr::RunExternal) {
            diags.push(
                Diagnostic::new(
                    Code::W204,
                    &rule.name,
                    format!(
                        "unconditional {} on hot event {}: every event pays the \
                         external-sink cost",
                        action_name(action),
                        rule.event.kind
                    ),
                )
                .with_span(action_name(action))
                .with_help(
                    "add a condition to thin the firings, or move the action behind a \
                     timer rule that aggregates over a window",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AggFuncIr, Analyzer, AttrIr, EventIr, GroupColumnIr, LatIr};

    fn aging_lat() -> LatIr {
        LatIr {
            name: "Win".into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![
                AggColumnIr {
                    func: AggFuncIr::Count,
                    source: None,
                    alias: "N".into(),
                    aging: true,
                },
                AggColumnIr {
                    func: AggFuncIr::Avg,
                    source: Some(AttrIr {
                        class: "Query".into(),
                        attr: "Duration".into(),
                    }),
                    alias: "Avg_D".into(),
                    aging: true,
                },
            ],
            bounded: true,
            max_rows: None,
            shards: None,
        }
    }

    #[test]
    fn cost_model_is_deterministic() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        let rule = RuleIr {
            name: "heavy".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Win.Avg_D > 1").unwrap()),
            actions: vec![
                ActionIr::Insert { lat: "Win".into() },
                ActionIr::PersistLat {
                    lat: "Win".into(),
                    table: "t".into(),
                },
            ],
        };
        // probe Win: 1 + 2 aging = 3; Insert: 1 + 2 aggs + 2*2 aging + 1 bounded = 8;
        // PersistLat: 8. Total 19.
        let (total, parts) = rule_cost(a.universe(), &rule);
        assert_eq!(total, 19);
        // The probe is keyed by Query, which is in the QueryCommit payload:
        // the dispatch plan hoists it, and the breakdown says so.
        assert!(
            parts[0].contains("(hoisted: shared per event)"),
            "{parts:?}"
        );
    }

    #[test]
    fn probe_outside_event_payload_is_not_marked_hoisted() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        let rule = RuleIr {
            name: "timer_probe".into(),
            event: EventIr {
                kind: "TimerAlarm".into(),
                arg: Some("t".into()),
                payload: vec!["Timer".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Win.Avg_D > 1").unwrap()),
            actions: vec![],
        };
        let (_, parts) = rule_cost(a.universe(), &rule);
        assert!(!parts[0].contains("hoisted"), "{parts:?}");
    }

    #[test]
    fn heavy_rule_is_w201_and_light_rule_is_clean() {
        let mut a = Analyzer::new();
        assert!(a.check_lat(&aging_lat()).is_empty());
        let mut rule = RuleIr {
            name: "heavy".into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: Some(sqlcm_sql::parse_expression("Win.Avg_D > 1").unwrap()),
            actions: vec![
                ActionIr::Insert { lat: "Win".into() },
                ActionIr::PersistLat {
                    lat: "Win".into(),
                    table: "t".into(),
                },
            ],
        };
        let diags = a.check_rule(&rule);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::W201);
        assert!(diags[0].message.contains("19"));

        // probe 3 + insert 8 = 11 <= 16: below threshold. The condition also
        // changes so the admitted "heavy" rule doesn't trip W102. (The pair is
        // legitimately order-sensitive — heavy reads Avg_D, light writes it —
        // so only the cost verdict is asserted here.)
        rule.name = "light".into();
        rule.actions = vec![ActionIr::Insert { lat: "Win".into() }];
        rule.condition = Some(sqlcm_sql::parse_expression("Win.Avg_D > 2").unwrap());
        let diags = a.check_rule(&rule);
        assert!(diags.iter().all(|d| d.code != Code::W201), "{diags:?}");
    }
}
