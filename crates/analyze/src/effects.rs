//! Effect analysis: per-rule column-level read/write sets (W203).
//!
//! Every admitted rule is summarized as a [`RuleEffects`]: which class
//! attributes and LAT columns its condition *reads*, and which LAT columns
//! its actions *write*. The abstract domain per (LAT, column) is the flat
//! lattice `⊥ (untouched) ⊏ written ⊏ ⊤ (whole LAT)`:
//!
//! * `Insert(L)` writes **every aggregate column** of `L` — the runtime folds
//!   the in-context object into all aggregate states of the row — and may
//!   *create* the row (which is the only way the grouping key is ever
//!   "written": the key of an existing row is immutable). This split is what
//!   the plan compiler exploits: a reader that only looks at key columns
//!   cannot observe an `Insert` into an existing row.
//! * `Reset(L)` writes ⊤: every column of every row is destroyed.
//! * All other actions write nothing (persists *read*, mail/external produce
//!   no LAT state).
//!
//! The pairwise [`RuleEffects::interferes_with`] relation feeds the
//! order-sensitivity check in [`crate::confluence`], and the summaries are
//! consumed by `sqlcm-core`'s dispatch-plan compiler to decide which hoisted
//! LAT row snapshots a fired rule can actually have dirtied.

use std::collections::{BTreeMap, BTreeSet};

use sqlcm_sql::ExprIr;

use crate::diagnostics::{Code, Diagnostic};
use crate::schema::SchemaUniverse;
use crate::{ActionIr, EventIr, RuleIr};

/// What one rule writes into one LAT.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatWriteEffect {
    /// Aggregate columns written (canonical schema spelling). Group-key
    /// columns are never in this set — see [`LatWriteEffect::creates_rows`].
    pub columns: BTreeSet<String>,
    /// `Reset`: every column of every row is clobbered; `columns` is moot.
    pub whole_lat: bool,
    /// `Insert` may create a row that did not exist before, flipping the
    /// implicit-∃ of any probe (and materializing the grouping key).
    pub creates_rows: bool,
}

/// Column-level read/write summary of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleEffects {
    pub rule: String,
    pub event: EventIr,
    /// Class attributes the condition reads, keyed by canonical class name.
    pub attr_reads: BTreeMap<String, BTreeSet<String>>,
    /// LAT columns the condition reads, keyed by lowercased LAT name with
    /// canonical column spellings. Columns that could not be resolved are
    /// recorded as written in the condition (analysis stays sound: unknown
    /// names never *narrow* anything, they only appear here for reporting).
    pub lat_reads: BTreeMap<String, BTreeSet<String>>,
    /// LAT write effects, keyed by lowercased LAT name.
    pub lat_writes: BTreeMap<String, LatWriteEffect>,
}

impl RuleEffects {
    /// Does `self` (the earlier rule) read anything that `later` writes on
    /// the same LAT? Returns a human-readable description of the first
    /// conflict found. This is the asymmetric half of the interference
    /// relation the confluence pass cares about: a reader ordered *before* a
    /// writer observes the previous event's state, so swapping the two rules
    /// changes observable behaviour.
    pub fn reads_what_it_writes(&self, later: &RuleEffects) -> Option<String> {
        for (lat, reads) in &self.lat_reads {
            let Some(w) = later.lat_writes.get(lat) else {
                continue;
            };
            if w.whole_lat {
                return Some(format!(
                    "`{}` resets a LAT that `{}` reads",
                    later.rule, self.rule
                ));
            }
            if let Some(col) = reads.iter().find(|c| w.columns.contains(*c)) {
                return Some(format!(
                    "column `{col}` is read by `{}` and written by `{}`",
                    self.rule, later.rule
                ));
            }
            if w.creates_rows {
                return Some(format!(
                    "`{}` can create the row `{}` probes (implicit-∃ flips)",
                    later.rule, self.rule
                ));
            }
        }
        None
    }

    /// Symmetric interference: swapping adjacent rules `a; b` → `b; a` is
    /// observable iff either reads what the other writes.
    pub fn interferes_with(&self, other: &RuleEffects) -> Option<String> {
        self.reads_what_it_writes(other)
            .or_else(|| other.reads_what_it_writes(self))
    }
}

/// Compute the effect summary of one rule against the current universe.
///
/// Unresolvable references degrade gracefully (E001 is someone else's job):
/// an unknown LAT in an action is summarized as a whole-LAT write, so a
/// consumer that trusts the summary still over-approximates.
pub fn rule_effects(universe: &SchemaUniverse, rule: &RuleIr) -> RuleEffects {
    let mut eff = RuleEffects {
        rule: rule.name.clone(),
        event: rule.event.clone(),
        attr_reads: BTreeMap::new(),
        lat_reads: BTreeMap::new(),
        lat_writes: BTreeMap::new(),
    };
    if let Some(cond) = &rule.condition {
        collect_reads(universe, &ExprIr::lower(cond), &mut eff);
    }
    for action in &rule.actions {
        match action {
            ActionIr::Insert { lat } => {
                let w = eff.lat_writes.entry(lat.to_ascii_lowercase()).or_default();
                w.creates_rows = true;
                match universe.lat(lat) {
                    Some(schema) => {
                        w.columns
                            .extend(schema.aggregate_columns().map(|c| c.name.clone()));
                    }
                    // Unknown LAT: be maximally pessimistic.
                    None => w.whole_lat = true,
                }
            }
            ActionIr::Reset { lat } => {
                eff.lat_writes
                    .entry(lat.to_ascii_lowercase())
                    .or_default()
                    .whole_lat = true;
            }
            ActionIr::PersistLat { .. }
            | ActionIr::PersistObject { .. }
            | ActionIr::SetTimer { .. }
            | ActionIr::Cancel { .. }
            | ActionIr::SendMail
            | ActionIr::RunExternal => {}
        }
    }
    eff
}

/// Collect condition reads from the lowered IR's reference pool — the pool
/// is exactly the deduplicated set of qualified columns the old AST walk
/// visited.
fn collect_reads(universe: &SchemaUniverse, ir: &ExprIr, eff: &mut RuleEffects) {
    for (qualifier, name) in &ir.refs {
        let Some(q) = qualifier else { continue };
        if let Some(class) = universe.class(q) {
            let attr = class.canonical_attr(name).unwrap_or(name).to_string();
            eff.attr_reads
                .entry(class.name.clone())
                .or_default()
                .insert(attr);
        } else {
            let col = universe
                .lat(q)
                .and_then(|l| l.column(name))
                .map(|c| c.name.clone())
                .unwrap_or_else(|| name.clone());
            eff.lat_reads
                .entry(q.to_ascii_lowercase())
                .or_default()
                .insert(col);
        }
    }
}

/// W203 — "read-only LAT column": the new rule's condition reads an
/// aggregate column of a LAT that **no** rule admitted so far (including the
/// new rule itself) feeds with an `Insert`. Once a row exists the column
/// stays at its initial aggregate (NULL for value aggregates), so the
/// comparison can never become true; more commonly no row ever exists and
/// the implicit-∃ keeps the condition false outright.
///
/// Group-key columns are exempt: probing the key of a LAT that a later rule
/// (or an operator) feeds is the legitimate existence-test idiom.
pub fn check_unfed_reads(
    universe: &SchemaUniverse,
    admitted: &[RuleIr],
    rule: &RuleIr,
    diags: &mut Vec<Diagnostic>,
) {
    let eff = rule_effects(universe, rule);
    if eff.lat_reads.is_empty() {
        return;
    }
    let mut fed: BTreeSet<String> = BTreeSet::new();
    for r in admitted.iter().chain(std::iter::once(rule)) {
        for action in &r.actions {
            if let ActionIr::Insert { lat } = action {
                fed.insert(lat.to_ascii_lowercase());
            }
        }
    }
    for (lat_key, reads) in &eff.lat_reads {
        if fed.contains(lat_key) {
            continue;
        }
        let Some(schema) = universe.lat(lat_key) else {
            continue; // unknown LAT is E001, reported elsewhere
        };
        for col in reads {
            let Some(column) = schema.column(col) else {
                continue;
            };
            if column.group {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    Code::W203,
                    &rule.name,
                    format!(
                        "condition reads `{}.{}`, but no registered rule ever \
                         Inserts into LAT {}",
                        schema.name, column.name, schema.name
                    ),
                )
                .with_span(format!("{}.{}", schema.name, column.name))
                .with_help(
                    "without a feeding rule the column keeps its initial aggregate \
                     (and the row may never exist); register the Insert rule first",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggColumnIr, AggFuncIr, AttrIr, GroupColumnIr, LatIr};

    fn universe_with_lat() -> SchemaUniverse {
        let mut u = SchemaUniverse::builtin();
        let diags = u.register_lat(&LatIr {
            name: "D_LAT".into(),
            group_by: vec![GroupColumnIr {
                source: AttrIr {
                    class: "Query".into(),
                    attr: "Logical_Signature".into(),
                },
                alias: "Sig".into(),
            }],
            aggregates: vec![
                AggColumnIr {
                    func: AggFuncIr::Count,
                    source: None,
                    alias: "N".into(),
                    aging: false,
                },
                AggColumnIr {
                    func: AggFuncIr::Avg,
                    source: Some(AttrIr {
                        class: "Query".into(),
                        attr: "Duration".into(),
                    }),
                    alias: "AD".into(),
                    aging: false,
                },
            ],
            bounded: false,
            max_rows: None,
            shards: None,
        });
        assert!(diags.is_empty(), "{diags:?}");
        u
    }

    fn rule(name: &str, cond: Option<&str>, actions: Vec<ActionIr>) -> RuleIr {
        RuleIr {
            name: name.into(),
            event: EventIr {
                kind: "QueryCommit".into(),
                arg: None,
                payload: vec!["Query".into()],
            },
            condition: cond.map(|c| sqlcm_sql::parse_expression(c).unwrap()),
            actions,
        }
    }

    #[test]
    fn insert_writes_aggregates_and_creates_rows() {
        let u = universe_with_lat();
        let eff = rule_effects(
            &u,
            &rule(
                "feed",
                None,
                vec![ActionIr::Insert {
                    lat: "d_lat".into(),
                }],
            ),
        );
        let w = eff.lat_writes.get("d_lat").unwrap();
        assert!(w.creates_rows);
        assert!(!w.whole_lat);
        let cols: Vec<&str> = w.columns.iter().map(String::as_str).collect();
        assert_eq!(cols, ["AD", "N"], "aggregates only, never the key");
    }

    #[test]
    fn reset_is_whole_lat() {
        let u = universe_with_lat();
        let eff = rule_effects(
            &u,
            &rule(
                "wipe",
                None,
                vec![ActionIr::Reset {
                    lat: "D_LAT".into(),
                }],
            ),
        );
        assert!(eff.lat_writes.get("d_lat").unwrap().whole_lat);
    }

    #[test]
    fn condition_reads_resolve_canonical_spellings() {
        let u = universe_with_lat();
        let eff = rule_effects(
            &u,
            &rule(
                "r",
                Some("query.duration > d_lat.ad AND D_LAT.N > 2"),
                vec![],
            ),
        );
        assert!(eff.attr_reads.get("Query").unwrap().contains("Duration"));
        let reads = eff.lat_reads.get("d_lat").unwrap();
        assert!(reads.contains("AD") && reads.contains("N"), "{reads:?}");
    }

    #[test]
    fn reader_before_writer_interferes() {
        let u = universe_with_lat();
        let reader = rule_effects(&u, &rule("reader", Some("D_LAT.N > 5"), vec![]));
        let writer = rule_effects(
            &u,
            &rule(
                "writer",
                None,
                vec![ActionIr::Insert {
                    lat: "D_LAT".into(),
                }],
            ),
        );
        assert!(reader.reads_what_it_writes(&writer).is_some());
        assert!(writer.reads_what_it_writes(&reader).is_none());
        assert!(reader.interferes_with(&writer).is_some());
    }

    #[test]
    fn unfed_aggregate_read_is_w203_but_key_read_is_not() {
        let u = universe_with_lat();
        let mut diags = Vec::new();
        check_unfed_reads(
            &u,
            &[],
            &rule("r", Some("D_LAT.AD > 1"), vec![]),
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::W203);

        let mut diags = Vec::new();
        check_unfed_reads(
            &u,
            &[],
            &rule("k", Some("D_LAT.Sig = 7"), vec![]),
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");

        // A feeder anywhere in the admitted set silences the warning.
        let feeder = rule(
            "feed",
            None,
            vec![ActionIr::Insert {
                lat: "D_LAT".into(),
            }],
        );
        let mut diags = Vec::new();
        check_unfed_reads(
            &u,
            std::slice::from_ref(&feeder),
            &rule("r", Some("D_LAT.AD > 1"), vec![]),
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
