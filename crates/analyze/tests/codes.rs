//! One end-to-end test per diagnostic code: a bad ruleset fires it, and a
//! known-good ruleset (the paper's Examples 1–3 shape) passes clean.

use sqlcm_analyze::{
    ActionIr, AggColumnIr, AggFuncIr, Analyzer, AttrIr, Code, Diagnostic, EventIr, GroupColumnIr,
    LatIr, RuleIr,
};
use sqlcm_sql::parse_expression;

fn attr(class: &str, attr: &str) -> AttrIr {
    AttrIr {
        class: class.into(),
        attr: attr.into(),
    }
}

fn duration_lat(bounded: bool) -> LatIr {
    LatIr {
        name: "Duration_LAT".into(),
        group_by: vec![GroupColumnIr {
            source: attr("Query", "Logical_Signature"),
            alias: "Sig".into(),
        }],
        aggregates: vec![
            AggColumnIr {
                func: AggFuncIr::Count,
                source: None,
                alias: "N".into(),
                aging: false,
            },
            AggColumnIr {
                func: AggFuncIr::Avg,
                source: Some(attr("Query", "Duration")),
                alias: "Avg_Duration".into(),
                aging: false,
            },
        ],
        bounded,
        max_rows: None,
        shards: None,
    }
}

fn on_query_commit(name: &str, cond: Option<&str>, actions: Vec<ActionIr>) -> RuleIr {
    RuleIr {
        name: name.into(),
        event: EventIr {
            kind: "QueryCommit".into(),
            arg: None,
            payload: vec!["Query".into()],
        },
        condition: cond.map(|c| parse_expression(c).unwrap()),
        actions,
    }
}

fn codes(diags: &[sqlcm_analyze::Diagnostic]) -> Vec<Code> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn known_good_ruleset_passes_clean() {
    // Example 1 (outliers), Example 3 (top-k + persist on timer), eviction
    // spill — the idioms the paper's §3 examples use.
    let lats = vec![
        duration_lat(false),
        LatIr {
            name: "TopK".into(),
            group_by: vec![GroupColumnIr {
                source: attr("Query", "Logical_Signature"),
                alias: "Sig".into(),
            }],
            aggregates: vec![AggColumnIr {
                func: AggFuncIr::Max,
                source: Some(attr("Query", "Duration")),
                alias: "D".into(),
                aging: false,
            }],
            bounded: true,
            max_rows: None,
            shards: None,
        },
    ];
    let rules = vec![
        on_query_commit(
            "track",
            None,
            vec![ActionIr::Insert {
                lat: "Duration_LAT".into(),
            }],
        ),
        on_query_commit(
            "report_outlier",
            Some("Query.Duration > 5 * Duration_LAT.Avg_Duration AND Duration_LAT.N >= 30"),
            vec![ActionIr::SendMail],
        ),
        on_query_commit(
            "track_topk",
            None,
            vec![ActionIr::Insert { lat: "TopK".into() }],
        ),
        RuleIr {
            name: "persist_topk".into(),
            event: EventIr {
                kind: "TimerAlarm".into(),
                arg: Some("hourly".into()),
                payload: vec!["Timer".into()],
            },
            condition: None,
            actions: vec![ActionIr::PersistLat {
                lat: "TopK".into(),
                table: "topk_history".into(),
            }],
        },
        RuleIr {
            name: "keep_evicted".into(),
            event: EventIr {
                kind: "LatEviction".into(),
                arg: Some("TopK".into()),
                payload: vec!["Evicted(TopK)".into()],
            },
            condition: None,
            actions: vec![ActionIr::PersistObject {
                class: "Evicted(TopK)".into(),
                table: "evicted".into(),
            }],
        },
    ];
    let diags = Analyzer::check_ruleset(&lats, &rules);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn e001_unknown_reference() {
    let diags =
        Analyzer::check_ruleset(&[], &[on_query_commit("r", Some("Nope_LAT.N > 1"), vec![])]);
    assert_eq!(codes(&diags), vec![Code::E001]);
}

#[test]
fn e002_type_mismatch() {
    let diags = Analyzer::check_ruleset(
        &[duration_lat(false)],
        &[on_query_commit(
            "r",
            Some("Duration_LAT.N = 'many'"),
            vec![],
        )],
    );
    assert_eq!(codes(&diags), vec![Code::E002]);
}

#[test]
fn e003_unjoinable_lat_probe() {
    let rule = RuleIr {
        name: "r".into(),
        event: EventIr {
            kind: "TxnCommit".into(),
            arg: None,
            payload: vec!["Transaction".into()],
        },
        condition: Some(parse_expression("Duration_LAT.Avg_Duration > 5").unwrap()),
        actions: vec![],
    };
    let diags = Analyzer::check_ruleset(&[duration_lat(false)], &[rule]);
    assert_eq!(codes(&diags), vec![Code::E003]);
}

#[test]
fn e004_cascade_cycle() {
    let refill = RuleIr {
        name: "refill".into(),
        event: EventIr {
            kind: "LatEviction".into(),
            arg: Some("Duration_LAT".into()),
            payload: vec!["Evicted(Duration_LAT)".into()],
        },
        condition: None,
        actions: vec![ActionIr::Insert {
            lat: "Duration_LAT".into(),
        }],
    };
    let diags = Analyzer::check_ruleset(&[duration_lat(true)], &[refill]);
    assert_eq!(codes(&diags), vec![Code::E004]);
}

#[test]
fn e005_invalid_shard_count() {
    let mut zero = duration_lat(false);
    zero.shards = Some(0);
    let diags = Analyzer::check_ruleset(&[zero], &[]);
    assert_eq!(codes(&diags), vec![Code::E005]);

    let mut huge = duration_lat(false);
    huge.shards = Some(sqlcm_analyze::MAX_LAT_SHARDS + 1);
    let diags = Analyzer::check_ruleset(&[huge], &[]);
    assert_eq!(codes(&diags), vec![Code::E005]);

    // An invalid shard count denies registration: the LAT stays unknown.
    let mut analyzer = Analyzer::new();
    let mut bad = duration_lat(false);
    bad.shards = Some(0);
    analyzer.check_lat(&bad);
    assert!(analyzer.universe().lat("Duration_LAT").is_none());
}

#[test]
fn w202_more_shards_than_row_bound() {
    let mut lat = duration_lat(true);
    lat.max_rows = Some(8);
    lat.shards = Some(64);
    let diags = Analyzer::check_ruleset(&[lat], &[]);
    assert_eq!(codes(&diags), vec![Code::W202]);

    // A warning does not deny registration.
    let mut analyzer = Analyzer::new();
    let mut lat = duration_lat(true);
    lat.max_rows = Some(8);
    lat.shards = Some(64);
    analyzer.check_lat(&lat);
    assert!(analyzer.universe().lat("Duration_LAT").is_some());

    // Shards within the bound stay silent.
    let mut lat = duration_lat(true);
    lat.max_rows = Some(64);
    lat.shards = Some(8);
    assert!(Analyzer::check_ruleset(&[lat], &[]).is_empty());
}

#[test]
fn w101_dead_rule() {
    let diags = Analyzer::check_ruleset(
        &[],
        &[on_query_commit(
            "r",
            Some("Session.Success = FALSE"),
            vec![],
        )],
    );
    assert_eq!(codes(&diags), vec![Code::W101]);
}

#[test]
fn w102_duplicate_rule() {
    let diags = Analyzer::check_ruleset(
        &[],
        &[
            on_query_commit("a", Some("Query.Duration > 1"), vec![ActionIr::SendMail]),
            on_query_commit("b", Some("Query.Duration > 1"), vec![ActionIr::SendMail]),
        ],
    );
    assert_eq!(codes(&diags), vec![Code::W102]);
}

#[test]
fn e006_unsatisfiable_condition() {
    // Count aggregates are non-negative; N < 0 can never hold.
    let diags = Analyzer::check_ruleset(
        &[duration_lat(false)],
        &[
            on_query_commit(
                "feed",
                None,
                vec![ActionIr::Insert {
                    lat: "Duration_LAT".into(),
                }],
            ),
            on_query_commit("dead", Some("Duration_LAT.N < 0"), vec![ActionIr::SendMail]),
        ],
    );
    assert_eq!(codes(&diags), vec![Code::E006]);

    // An unsatisfiable condition is an error: the rule is denied.
    let mut analyzer = Analyzer::new();
    assert!(analyzer.check_lat(&duration_lat(false)).is_empty());
    analyzer.check_rule(&on_query_commit(
        "dead",
        Some("Duration_LAT.N < 0"),
        vec![ActionIr::SendMail],
    ));
    assert!(analyzer.rules().is_empty());
}

#[test]
fn w103_tautological_condition() {
    // Durations are non-negative, so `>= 0` always holds: the condition is
    // dead weight (and usually a sign the predicate is wrong).
    let diags = Analyzer::check_ruleset(
        &[],
        &[on_query_commit(
            "always",
            Some("Query.Duration >= 0"),
            vec![ActionIr::SendMail],
        )],
    );
    assert_eq!(codes(&diags), vec![Code::W103]);
}

#[test]
fn w105_duplicated_predicate_across_same_event_rules() {
    // Two distinct conditions sharing the `Query.Duration > 1` predicate on
    // the same event: the dispatch plan evaluates it once per event, and the
    // lint reports the overlap. Not a W102 (the whole conditions differ).
    let diags = Analyzer::check_ruleset(
        &[],
        &[
            on_query_commit(
                "a",
                Some("Query.Duration > 1 AND Query.User = 'admin'"),
                vec![ActionIr::SendMail],
            ),
            on_query_commit(
                "b",
                Some("Query.Duration > 1 AND Query.Estimated_Cost > 100"),
                vec![ActionIr::SendMail],
            ),
        ],
    );
    assert_eq!(codes(&diags), vec![Code::W105]);
}

#[test]
fn w104_possible_division_by_zero() {
    // N counts rows and may be 0 for a fresh group; dividing by it is a
    // runtime hazard the intervals can see statically.
    let diags = Analyzer::check_ruleset(
        &[duration_lat(false)],
        &[
            on_query_commit(
                "feed",
                None,
                vec![ActionIr::Insert {
                    lat: "Duration_LAT".into(),
                }],
            ),
            on_query_commit(
                "ratio",
                Some("Query.Duration / Duration_LAT.N > 2"),
                vec![ActionIr::SendMail],
            ),
        ],
    );
    assert_eq!(codes(&diags), vec![Code::W104]);
}

#[test]
fn w203_read_only_lat_column() {
    // No admitted rule inserts into Duration_LAT, so its aggregates stay at
    // their initial state forever; reading them is almost certainly a bug.
    let diags = Analyzer::check_ruleset(
        &[duration_lat(false)],
        &[on_query_commit(
            "probe",
            Some("Duration_LAT.Avg_Duration > 100"),
            vec![ActionIr::SendMail],
        )],
    );
    assert_eq!(codes(&diags), vec![Code::W203]);

    // A warning does not deny registration.
    let mut analyzer = Analyzer::new();
    assert!(analyzer.check_lat(&duration_lat(false)).is_empty());
    analyzer.check_rule(&on_query_commit(
        "probe",
        Some("Duration_LAT.Avg_Duration > 100"),
        vec![ActionIr::SendMail],
    ));
    assert_eq!(analyzer.rules().len(), 1);
}

#[test]
fn w301_order_sensitive_pair() {
    // The reader is registered before the writer, so it observes the state
    // left by the previous event; registering the writer afterwards flags the
    // adjacent pair. (A conditional feeder keeps the reader's probe fed so
    // only the ordering is at issue.)
    let diags = Analyzer::check_ruleset(
        &[duration_lat(false)],
        &[
            on_query_commit(
                "feed_slow",
                Some("Query.Duration > 5"),
                vec![ActionIr::Insert {
                    lat: "Duration_LAT".into(),
                }],
            ),
            on_query_commit(
                "reader",
                Some("Duration_LAT.Avg_Duration > 100"),
                vec![ActionIr::SendMail],
            ),
            on_query_commit(
                "writer",
                None,
                vec![ActionIr::Insert {
                    lat: "Duration_LAT".into(),
                }],
            ),
        ],
    );
    assert_eq!(codes(&diags), vec![Code::W301]);
}

#[test]
fn w302_cascade_amplification() {
    let mut analyzer = Analyzer::new();
    analyzer.cascade_threshold = 5;
    assert!(analyzer.check_lat(&duration_lat(true)).is_empty());
    for i in 0..5 {
        let spill = RuleIr {
            name: format!("spill{i}"),
            event: EventIr {
                kind: "LatEviction".into(),
                arg: Some("Duration_LAT".into()),
                payload: vec!["Evicted(Duration_LAT)".into()],
            },
            condition: None,
            // Distinct target tables so the spills are not W102 duplicates.
            actions: vec![ActionIr::PersistObject {
                class: "Evicted(Duration_LAT)".into(),
                table: format!("spilled_{i}"),
            }],
        };
        assert!(analyzer.check_rule(&spill).is_empty(), "spill{i}");
    }
    // One commit insert may evict, fanning out to the 5 spill rules:
    // 1 + 5 = 6 > 5 worst-case evaluations per event. (The spill rules
    // themselves sit exactly at the threshold and stay clean.)
    let diags = analyzer.check_rule(&on_query_commit(
        "feed",
        None,
        vec![ActionIr::Insert {
            lat: "Duration_LAT".into(),
        }],
    ));
    assert_eq!(codes(&diags), vec![Code::W302]);
}

#[test]
fn w204_unconditional_external_action() {
    // No condition + SendMail on QueryCommit: every query pays the sink.
    let diags = Analyzer::check_ruleset(
        &[],
        &[on_query_commit("blast", None, vec![ActionIr::SendMail])],
    );
    assert_eq!(codes(&diags), vec![Code::W204]);

    // RunExternal on a Txn event is flagged the same way.
    let diags = Analyzer::check_ruleset(
        &[],
        &[RuleIr {
            name: "hook".into(),
            event: EventIr {
                kind: "TxnCommit".into(),
                arg: None,
                payload: vec!["Transaction".into()],
            },
            condition: None,
            actions: vec![ActionIr::RunExternal],
        }],
    );
    assert_eq!(codes(&diags), vec![Code::W204]);

    // A condition thins the firings: clean.
    let diags = Analyzer::check_ruleset(
        &[],
        &[on_query_commit(
            "filtered",
            Some("Query.Duration > 30"),
            vec![ActionIr::SendMail],
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");

    // Cold events (session lifecycle, timers) are excluded: an unconditional
    // mail on login is deliberate, not a hot-path hazard.
    let diags = Analyzer::check_ruleset(
        &[],
        &[RuleIr {
            name: "greet".into(),
            event: EventIr {
                kind: "Login".into(),
                arg: None,
                payload: vec!["Session".into()],
            },
            condition: None,
            actions: vec![ActionIr::SendMail],
        }],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn w205_unindexable_hot_event_condition() {
    // Pattern-only condition on QueryCommit: payload-only reads but nothing
    // the guard index can probe, so the rule is evaluated on every query.
    let diags = Analyzer::check_ruleset(
        &[],
        &[on_query_commit(
            "droppy",
            Some("Query.Query_Text LIKE '%DROP TABLE%'"),
            vec![ActionIr::SendMail],
        )],
    );
    assert_eq!(codes(&diags), vec![Code::W205]);

    // A leading equality conjunct makes it indexable: clean.
    let diags = Analyzer::check_ruleset(
        &[],
        &[on_query_commit(
            "scoped",
            Some("Query.User = 'etl' AND Query.Query_Text LIKE '%DROP TABLE%'"),
            vec![ActionIr::SendMail],
        )],
    );
    assert!(diags.is_empty(), "{diags:?}");

    // LAT-reading rules are residual by design — the monitoring idiom — and
    // stay clean.
    let diags = Analyzer::check_ruleset(
        &[duration_lat(true)],
        &[
            on_query_commit(
                "feed",
                None,
                vec![ActionIr::Insert {
                    lat: "Duration_LAT".into(),
                }],
            ),
            on_query_commit(
                "outlier",
                Some("Duration_LAT.N >= 30"),
                vec![ActionIr::SendMail],
            ),
        ],
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn code_table_is_exhaustive_and_distinct() {
    use std::collections::BTreeSet;
    let strs: BTreeSet<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
    assert_eq!(strs.len(), Code::ALL.len(), "duplicate code strings");
    for code in Code::ALL {
        let s = code.as_str();
        assert!(!code.title().is_empty(), "{s} has no title");
        let expected = if s.starts_with('E') {
            sqlcm_analyze::Severity::Error
        } else {
            assert!(s.starts_with('W'), "{s}: codes are E.. or W..");
            sqlcm_analyze::Severity::Warning
        };
        assert_eq!(code.severity(), expected, "{s} severity");
        assert_eq!(
            Diagnostic::new(code, "r", "m").is_error(),
            expected == sqlcm_analyze::Severity::Error,
            "{s} is_error"
        );
    }
}

#[test]
fn w201_costly_rule() {
    let diags = Analyzer::check_ruleset(
        &[duration_lat(true)],
        &[
            on_query_commit(
                "feed",
                None,
                vec![ActionIr::Insert {
                    lat: "Duration_LAT".into(),
                }],
            ),
            on_query_commit(
                "heavy",
                Some("Duration_LAT.N > 100"),
                vec![
                    ActionIr::PersistLat {
                        lat: "Duration_LAT".into(),
                        table: "h".into(),
                    },
                    ActionIr::SendMail,
                    ActionIr::RunExternal,
                ],
            ),
        ],
    );
    assert_eq!(codes(&diags), vec![Code::W201]);
}
