//! Parser robustness: print→parse round trips over generated statements, and
//! never-panic over arbitrary input.

use proptest::prelude::*;
use sqlcm_sql::{parse_expression, parse_statement};

/// Generated SQL from a constrained grammar: every produced string must parse,
/// and parse(print(parse(s))) must be a fixpoint.
fn arb_select() -> impl Strategy<Value = String> {
    // Prefixed so a random identifier can never collide with a reserved word.
    let ident = "c_[a-z0-9_]{0,6}";
    let num = 0i64..100_000;
    (
        proptest::collection::vec(ident, 1..4),
        ident,
        proptest::option::of((ident, num.clone())),
        proptest::option::of((ident, any::<bool>())),
        proptest::option::of(0u64..50),
        proptest::option::of((ident, proptest::collection::vec(num, 1..4))),
    )
        .prop_map(|(cols, table, pred, order, limit, inlist)| {
            let mut sql = format!("SELECT {} FROM {}", cols.join(", "), table);
            let mut preds: Vec<String> = Vec::new();
            if let Some((c, n)) = pred {
                preds.push(format!("{c} >= {n}"));
            }
            if let Some((c, list)) = inlist {
                preds.push(format!(
                    "{c} IN ({})",
                    list.iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            if !preds.is_empty() {
                sql.push_str(&format!(" WHERE {}", preds.join(" AND ")));
            }
            if let Some((c, desc)) = order {
                sql.push_str(&format!(" ORDER BY {c}{}", if desc { " DESC" } else { "" }));
            }
            if let Some(l) = limit {
                sql.push_str(&format!(" LIMIT {l}"));
            }
            sql
        })
}

proptest! {
    #[test]
    fn generated_selects_roundtrip(sql in arb_select()) {
        let stmt = parse_statement(&sql).unwrap();
        let printed = stmt.to_string();
        let again = parse_statement(&printed).unwrap();
        prop_assert_eq!(&stmt, &again, "printed: {}", printed);
        // And printing is a fixpoint.
        prop_assert_eq!(printed.clone(), again.to_string());
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse_statement(&input);
        let _ = parse_expression(&input);
    }

    #[test]
    fn expressions_roundtrip(
        a in -1000i64..1000,
        b in -1000i64..1000,
        c in "c_[a-z]{1,5}",
    ) {
        let texts = [
            format!("{c} + {a} * {b}"),
            format!("({c} + {a}) * {b}"),
            format!("{c} > {a} AND {c} < {b} OR {c} = 0"),
            format!("NOT ({c} >= {a})"),
            format!("{c} IS NOT NULL"),
            format!("{c} IN ({a}, {b})"),
            format!("{c} NOT IN ({a})"),
            format!("{c} LIKE 'x%'"),
        ];
        for t in texts {
            let e = parse_expression(&t).unwrap();
            let printed = e.to_string();
            let again = parse_expression(&printed).unwrap();
            prop_assert_eq!(e, again, "text {}", t);
        }
    }
}

#[test]
fn explain_statement_roundtrip() {
    let s = parse_statement("EXPLAIN SELECT a FROM t WHERE a IN (1, 2)").unwrap();
    let printed = s.to_string();
    assert_eq!(printed, "EXPLAIN SELECT a FROM t WHERE a IN (1, 2)");
    assert_eq!(parse_statement(&printed).unwrap(), s);
    // Nested EXPLAIN parses too (explains the explain).
    assert!(parse_statement("EXPLAIN EXPLAIN SELECT 1").is_ok());
}
