//! Hand-rolled SQL lexer.
//!
//! Produces a flat `Vec<Token>`; keywords are recognized case-insensitively and
//! kept as uppercase identifiers (the parser matches on the uppercase form).
//! `--` line comments and `/* */` block comments are skipped.

use sqlcm_common::{Error, Result};

/// A lexical token. Identifiers keep their original spelling; `upper` views are
/// produced on demand by the parser for keyword matching.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`lineitem`, `SELECT`, …).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal, unescaped (`''` → `'`).
    Str(String),
    /// Positional parameter `?`.
    Question,
    /// Named parameter `@name`.
    AtParam(String),
    // Punctuation and operators.
    Comma,
    Period,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    Semicolon,
}

/// Tokenize `input`, or return a parse error naming the offending character.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Error::Parse(format!(
                            "unterminated block comment starting at byte {start}"
                        )));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Period);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '?' => {
                out.push(Token::Question);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Multi-byte UTF-8: copy the full char.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len]).map_err(|_| {
                                Error::Parse("invalid UTF-8 in string literal".into())
                            })?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Token::Str(s));
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                if j == start {
                    return Err(Error::Parse("bare '@' without a parameter name".into()));
                }
                out.push(Token::AtParam(input[start..j].to_string()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &input[start..j];
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float literal {text}")))?;
                    out.push(Token::Float(f));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad integer literal {text}")))?;
                    out.push(Token::Int(n));
                }
                i = j;
            }
            c if is_ident_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_ident_char(bytes[j] as char) {
                    j += 1;
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select() {
        let t = tokenize("SELECT a, b FROM t WHERE a >= 10.5").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("a".into()),
                Token::Comma,
                Token::Ident("b".into()),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::GtEq,
                Token::Float(10.5),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let t = tokenize("'it''s' 'héllo'").unwrap();
        assert_eq!(
            t,
            vec![Token::Str("it's".into()), Token::Str("héllo".into())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("SELECT -- comment\n 1 /* block\ncomment */ + 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Int(1),
                Token::Plus,
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn params() {
        let t = tokenize("? @p1 @name").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Question,
                Token::AtParam("p1".into()),
                Token::AtParam("name".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = tokenize("<> != <= >= < > = * / % + -").unwrap();
        assert_eq!(
            t,
            vec![
                Token::NotEq,
                Token::NotEq,
                Token::LtEq,
                Token::GtEq,
                Token::Lt,
                Token::Gt,
                Token::Eq,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Plus,
                Token::Minus,
            ]
        );
    }

    #[test]
    fn scientific_floats() {
        let t = tokenize("1e3 2.5E-2 7").unwrap();
        assert_eq!(
            t,
            vec![Token::Float(1e3), Token::Float(2.5e-2), Token::Int(7)]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("@ ").is_err());
    }

    #[test]
    fn dotted_names() {
        let t = tokenize("Query.Duration").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("Query".into()),
                Token::Period,
                Token::Ident("Duration".into()),
            ]
        );
    }
}
