//! SQL front-end for the host engine: lexer, AST, and recursive-descent parser.
//!
//! The supported subset covers everything the paper's workloads and monitoring
//! tasks need:
//!
//! * `SELECT` with projections, `INNER JOIN … ON`, `WHERE`, `GROUP BY`, `HAVING`,
//!   `ORDER BY … [ASC|DESC]`, `LIMIT` (used by the Query_logging baseline's
//!   post-processing query "top 10 by duration"),
//! * `INSERT`, `UPDATE`, `DELETE`,
//! * `CREATE TABLE` (with `PRIMARY KEY`, giving a clustered B-tree layout),
//!   `CREATE INDEX`, `DROP TABLE`,
//! * `BEGIN` / `COMMIT` / `ROLLBACK`,
//! * `EXEC proc(args…)` for stored procedures,
//! * positional `?` and named `@param` parameters — named parameters are what lets
//!   the logical query signature substitute *matching* parameter symbols
//!   (Section 4.2 (1) of the paper) instead of plain wildcards.
//!
//! The expression grammar is reused by `sqlcm-core` for ECA rule *conditions*
//! (`Query.Duration > 5 * Duration_LAT.Avg_Duration` parses as an ordinary
//! qualified-column expression tree).

pub mod ast;
pub mod ir;
pub mod lexer;
pub mod parser;

pub use ast::{
    BinOp, ColumnDef, Expr, Join, OrderKey, SelectItem, SelectStmt, Statement, TableRef, UnaryOp,
};
pub use ir::{ExprIr, IrOp, LikeMatcher, NodeId};
pub use lexer::{tokenize, Token};
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};
