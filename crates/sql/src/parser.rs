//! Recursive-descent parser for the SQL subset (see crate docs for coverage).

use sqlcm_common::{DataType, Error, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Words that can never be a table alias or bare column at clause boundaries.
const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "JOIN",
    "INNER",
    "ON",
    "AS",
    "AND",
    "OR",
    "NOT",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "INDEX",
    "DROP",
    "BEGIN",
    "COMMIT",
    "ROLLBACK",
    "EXEC",
    "PRIMARY",
    "KEY",
    "NULL",
    "IS",
    "LIKE",
    "ASC",
    "DESC",
    "TRUE",
    "FALSE",
    "TRANSACTION",
    "UNIQUE",
    "IF",
    "THEN",
    "ELSE",
    "END",
    "IN",
    "EXPLAIN",
];

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.eat(&Token::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.check(&Token::Semicolon) {
            return Err(p.error("expected ';' between statements"));
        }
    }
    Ok(out)
}

/// Parse a standalone expression (used for ECA rule conditions).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// The parser state. Exposed so the engine can drive statement-at-a-time parsing
/// over procedure bodies.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_param: usize,
}

impl Parser {
    pub fn new(input: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            next_param: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.check(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {t:?}")))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::Parse(format!(
            "{msg} at token {:?} (position {})",
            self.peek(),
            self.pos
        ))
    }

    /// Peek the uppercase spelling of an identifier token.
    fn peek_kw(&self) -> Option<String> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }

    /// Consume the keyword `kw` (case-insensitive) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw().as_deref() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected keyword {kw}")))
        }
    }

    /// Consume a (non-reserved) identifier.
    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    /// Top-level statement dispatch.
    pub fn statement(&mut self) -> Result<Statement> {
        let kw = self
            .peek_kw()
            .ok_or_else(|| self.error("expected a statement"))?;
        match kw.as_str() {
            "SELECT" => Ok(Statement::Select(self.select()?)),
            "INSERT" => self.insert(),
            "UPDATE" => self.update(),
            "DELETE" => self.delete(),
            "CREATE" => self.create(),
            "DROP" => {
                self.pos += 1;
                self.expect_kw("TABLE")?;
                Ok(Statement::DropTable {
                    name: self.ident()?,
                })
            }
            "BEGIN" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                Ok(Statement::Begin)
            }
            "COMMIT" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                Ok(Statement::Commit)
            }
            "ROLLBACK" => {
                self.pos += 1;
                self.eat_kw("TRANSACTION");
                Ok(Statement::Rollback)
            }
            "EXEC" | "EXECUTE" => self.exec(),
            "EXPLAIN" => {
                self.pos += 1;
                Ok(Statement::Explain(Box::new(self.statement()?)))
            }
            other => Err(self.error(&format!("unsupported statement {other}"))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut stmt = SelectStmt {
            items,
            ..Default::default()
        };
        if self.eat_kw("FROM") {
            stmt.from = Some(self.table_ref()?);
            loop {
                if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                } else if !self.eat_kw("JOIN") {
                    break;
                }
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                stmt.joins.push(Join { table, on });
            }
        }
        if self.eat_kw("WHERE") {
            stmt.predicate = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderKey { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => stmt.limit = Some(n as u64),
                _ => return Err(self.error("LIMIT expects a non-negative integer")),
            }
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(kw) = self.peek_kw() {
            if RESERVED.contains(&kw.as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            if !self.check(&Token::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            rows.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            let mut primary_key = Vec::new();
            loop {
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    self.expect(&Token::LParen)?;
                    loop {
                        primary_key.push(self.ident()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                } else {
                    let col = self.ident()?;
                    let ty = self.data_type()?;
                    let mut not_null = false;
                    loop {
                        if self.eat_kw("NOT") {
                            self.expect_kw("NULL")?;
                            not_null = true;
                        } else if self.eat_kw("PRIMARY") {
                            self.expect_kw("KEY")?;
                            primary_key.push(col.clone());
                            not_null = true;
                        } else {
                            break;
                        }
                    }
                    columns.push(ColumnDef {
                        name: col,
                        data_type: ty,
                        not_null,
                    });
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Ok(Statement::CreateTable {
                name,
                columns,
                primary_key,
            })
        } else if self.eat_kw("INDEX") {
            let name = self.ident()?;
            self.expect_kw("ON")?;
            let table = self.ident()?;
            self.expect(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
            })
        } else {
            Err(self.error("expected TABLE or INDEX after CREATE"))
        }
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
            "TEXT" | "VARCHAR" | "STRING" | "CHAR" => {
                // Optional length argument, ignored: VARCHAR(40).
                if self.eat(&Token::LParen) {
                    self.advance();
                    self.expect(&Token::RParen)?;
                }
                DataType::Text
            }
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "TIMESTAMP" | "DATETIME" => DataType::Timestamp,
            "BLOB" => DataType::Blob,
            other => return Err(self.error(&format!("unknown type {other}"))),
        };
        Ok(ty)
    }

    fn exec(&mut self) -> Result<Statement> {
        self.pos += 1; // EXEC / EXECUTE
        let procedure = self.ident()?;
        let mut args = Vec::new();
        if self.eat(&Token::LParen) {
            if !self.check(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(Statement::Exec { procedure, args })
    }

    // ---- public cursor helpers (used by the engine's procedure-body parser) ----

    /// True when all tokens are consumed.
    pub fn is_at_end(&self) -> bool {
        self.at_end()
    }

    /// Uppercase spelling of the next token if it is an identifier/keyword.
    pub fn peek_keyword(&self) -> Option<String> {
        self.peek_kw()
    }

    /// Consume `kw` (case-insensitive) if it is next; returns whether it was.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        self.eat_kw(kw)
    }

    /// Consume a `;` if it is next.
    pub fn eat_semicolon(&mut self) -> bool {
        self.eat(&Token::Semicolon)
    }

    // ---- expression grammar (precedence climbing) ----

    /// Parse a full expression.
    pub fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::bin(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::bin(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE
        let negated_like = if self.peek_kw().as_deref() == Some("NOT")
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("LIKE"))
        {
            self.pos += 2;
            Some(true)
        } else if self.eat_kw("LIKE") {
            Some(false)
        } else {
            None
        };
        if let Some(negated) = negated_like {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        // [NOT] IN (e1, e2, …)
        let negated_in = if self.peek_kw().as_deref() == Some("NOT")
            && matches!(self.tokens.get(self.pos + 1), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("IN"))
        {
            self.pos += 2;
            Some(true)
        } else if self.eat_kw("IN") {
            Some(false)
        } else {
            None
        };
        if let Some(negated) = negated_in {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            if !self.check(&Token::RParen) {
                loop {
                    list.push(self.expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::bin(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::bin(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::bin(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary()?;
            // Fold negation of literals so `-5` is a literal, not an expression —
            // this matters for signature wildcarding of constants.
            if let Expr::Literal(Value::Int(i)) = inner {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(x)) = inner {
                return Ok(Expr::Literal(Value::Float(-x)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&Token::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::text(s)))
            }
            Some(Token::Question) => {
                self.pos += 1;
                let i = self.next_param;
                self.next_param += 1;
                Ok(Expr::Param(i))
            }
            Some(Token::AtParam(n)) => {
                self.pos += 1;
                Ok(Expr::NamedParam(n))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "TRUE" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    "FALSE" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    "NULL" => {
                        self.pos += 1;
                        return Ok(Expr::Literal(Value::Null));
                    }
                    _ => {
                        // A reserved word is still a valid *qualifier* when
                        // followed by a dot (rule conditions use
                        // `Transaction.Duration`).
                        let dotted = self.tokens.get(self.pos + 1) == Some(&Token::Period);
                        if RESERVED.contains(&upper.as_str()) && !dotted {
                            return Err(self.error(&format!("reserved word {upper} in expression")));
                        }
                    }
                }
                self.pos += 1;
                // Function call?
                if self.check(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    let mut star = false;
                    if self.eat(&Token::Star) {
                        star = true;
                    } else if !self.check(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::FuncCall {
                        name: upper,
                        args,
                        star,
                    });
                }
                // Qualified column?
                if self.eat(&Token::Period) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_roundtrip() {
        let sql = "SELECT l.price, o.id FROM lineitem AS l JOIN orders AS o ON l.okey = o.id WHERE l.qty > 5 AND o.status = 'open' GROUP BY o.id HAVING COUNT(*) > 2 ORDER BY l.price DESC LIMIT 10";
        let s = parse_statement(sql).unwrap();
        let printed = s.to_string();
        let s2 = parse_statement(&printed).unwrap();
        assert_eq!(s, s2, "parse → print → parse is stable");
    }

    #[test]
    fn select_star() {
        let s = parse_statement("SELECT * FROM t").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items, vec![SelectItem::Wildcard]);
                assert_eq!(sel.from.unwrap().name, "t");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn table_alias_without_as() {
        let s = parse_statement("SELECT x.a FROM t x WHERE x.a = 1").unwrap();
        match s {
            Statement::Select(sel) => assert_eq!(sel.from.unwrap().alias.as_deref(), Some("x")),
            _ => panic!(),
        }
    }

    #[test]
    fn insert_forms() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            _ => panic!(),
        }
        parse_statement("INSERT INTO t VALUES (1)").unwrap();
    }

    #[test]
    fn update_delete() {
        let s = parse_statement("UPDATE t SET a = a + 1, b = 'z' WHERE id = ?").unwrap();
        assert_eq!(s.param_count(), 1);
        let s = parse_statement("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn create_table_with_pk() {
        let s = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20) NOT NULL, w FLOAT)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(primary_key, vec!["id"]);
                assert!(columns[0].not_null);
                assert_eq!(columns[1].data_type, DataType::Text);
            }
            _ => panic!(),
        }
        let s = parse_statement("CREATE TABLE u (a INT, b INT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => {
                assert_eq!(primary_key, vec!["a", "b"])
            }
            _ => panic!(),
        }
    }

    #[test]
    fn txn_statements() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK;").unwrap(), Statement::Rollback);
    }

    #[test]
    fn exec_procedure() {
        let s = parse_statement("EXEC get_order(42, 'fast')").unwrap();
        match s {
            Statement::Exec { procedure, args } => {
                assert_eq!(procedure, "get_order");
                assert_eq!(args.len(), 2);
            }
            _ => panic!(),
        }
        parse_statement("EXECUTE nightly").unwrap();
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
        let e = parse_expression("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = parse_expression("a > 1 AND b < 2 OR c = 3").unwrap();
        // AND binds tighter than OR.
        match &e {
            Expr::Binary { op, .. } => assert_eq!(*op, BinOp::Or),
            _ => panic!(),
        }
        assert_eq!(e.atomic_condition_count(), 3);
    }

    #[test]
    fn rule_condition_expression() {
        // The paper's Example-1 condition parses as an ordinary expression.
        let e = parse_expression("Query.Duration > 5 * Duration_LAT.Avg_Duration").unwrap();
        match &e {
            Expr::Binary { left, op, right } => {
                assert_eq!(*op, BinOp::Gt);
                assert_eq!(left.to_string(), "Query.Duration");
                assert_eq!(right.to_string(), "5 * Duration_LAT.Avg_Duration");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn is_null_and_like() {
        let e = parse_expression("a IS NOT NULL AND name LIKE 'x%'").unwrap();
        assert_eq!(e.to_string(), "a IS NOT NULL AND name LIKE 'x%'");
        let e = parse_expression("name NOT LIKE '%y'").unwrap();
        assert_eq!(e.to_string(), "name NOT LIKE '%y'");
    }

    #[test]
    fn params_are_ordered() {
        let s = parse_statement("SELECT * FROM t WHERE a = ? AND b = ? AND c = ?").unwrap();
        assert_eq!(s.param_count(), 3);
    }

    #[test]
    fn negative_literals_fold() {
        let e = parse_expression("-5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Int(-5)));
        let e = parse_expression("-2.5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Float(-2.5)));
    }

    #[test]
    fn multi_statement_script() {
        let v = parse_statements("BEGIN; UPDATE t SET a = 1; COMMIT;").unwrap();
        assert_eq!(v.len(), 3);
        assert!(parse_statements("BEGIN COMMIT").is_err());
    }

    #[test]
    fn count_star() {
        let e = parse_expression("COUNT(*)").unwrap();
        assert_eq!(
            e,
            Expr::FuncCall {
                name: "COUNT".into(),
                args: vec![],
                star: true
            }
        );
    }

    #[test]
    fn parse_errors_are_errors_not_panics() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM",
            "INSERT t",
            "CREATE VIEW v",
            "SELECT * FROM t WHERE",
            "UPDATE t SET",
            "LIMIT 5",
            "SELECT * FROM t LIMIT -1",
            "SELECT (1",
        ] {
            assert!(parse_statement(bad).is_err(), "{bad:?} should fail");
        }
    }
}
