//! Flat expression IR: the single shared representation of rule-condition
//! expressions.
//!
//! The AST ([`crate::Expr`]) is a boxed recursive tree — good for parsing,
//! bad for everything after it: the runtime compiled it into *another* boxed
//! tree, and every analyzer pass re-walked the AST independently. This module
//! lowers an expression **once** into a `Vec`-arena of [`IrOp`]s with operand
//! indices (post-order, root last) plus side pools for constants, column
//! references, names, and `IN`-list member vectors. Per node it precomputes:
//!
//! * a **canonical structural hash** (deterministic FNV-1a over opcode,
//!   child hashes, and immediates; qualifiers and names are hashed
//!   case-folded so `d_lat.n` and `D_LAT.N` share a hash). Equal hashes are
//!   the cross-rule common-subexpression key — deliberately *without*
//!   commutative normalization, because `a AND b` and `b AND a` evaluate
//!   their operands (and surface their errors) in different orders;
//! * the **subtree size** in ops (CSE and lint thresholds);
//! * **boolish**: the node's value is always `Bool` or `Null` (safe to
//!   substitute through boolean identities);
//! * **infallible**: evaluation can never return `Err` — no column reads
//!   (missing-LAT-row ∃ sentinel), no checked arithmetic, no division.
//!
//! [`ExprIr::fold`] runs the build-time passes: constant folding with the
//! runtime's exact semantics (a subtree that would *error* at runtime — for
//! example `1 / 0` — is left unfolded so the runtime error survives) and
//! guarded boolean simplification (`x AND TRUE → x` only when `x` is
//! boolish; `x AND FALSE → FALSE` additionally requires `x` infallible,
//! because dropping `x` must not mask the error it would have raised).
//!
//! The refs pool doubles as the trace explainer's side-channel: it records
//! every qualified column reference in first-appearance order, exactly the
//! order the old AST walk produced.

use std::hash::{Hash, Hasher};

use sqlcm_common::Value;

use crate::ast::{BinOp, Expr, UnaryOp};

/// Index of a node in [`ExprIr::ops`].
pub type NodeId = u32;

/// One flat-IR operation. Children are [`NodeId`]s pointing at earlier arena
/// slots (the arena is in post-order, so `ops[root]` is always last).
#[derive(Debug, Clone, PartialEq)]
pub enum IrOp {
    /// Literal; index into [`ExprIr::consts`].
    Const(u32),
    /// Column reference; index into [`ExprIr::refs`].
    Ref(u32),
    /// Positional parameter (rejected by the runtime compiler; kept so the
    /// analyzer sees the same shape the parser produced).
    Param(usize),
    /// Named parameter; index into [`ExprIr::names`].
    NamedParam(u32),
    Unary {
        op: UnaryOp,
        expr: NodeId,
    },
    Binary {
        left: NodeId,
        op: BinOp,
        right: NodeId,
    },
    IsNull {
        expr: NodeId,
        negated: bool,
    },
    Like {
        expr: NodeId,
        pattern: NodeId,
        negated: bool,
    },
    /// Members live in [`ExprIr::lists`] at the given index.
    InList {
        expr: NodeId,
        list: u32,
        negated: bool,
    },
    /// Function call (rejected by the runtime compiler). `name` indexes
    /// [`ExprIr::names`], `args` indexes [`ExprIr::lists`].
    FuncCall {
        name: u32,
        args: u32,
        star: bool,
    },
}

/// A lowered expression: flat op arena plus constant/reference pools and
/// per-node analysis facts. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprIr {
    pub ops: Vec<IrOp>,
    pub root: NodeId,
    pub consts: Vec<Value>,
    /// Qualified and unqualified column references `(qualifier, name)` as
    /// written, deduplicated exactly, in first-appearance (left-to-right)
    /// order — the explainer side-channel.
    pub refs: Vec<(Option<String>, String)>,
    /// Named-parameter and function names.
    pub names: Vec<String>,
    /// `IN`-list member vectors and function argument vectors.
    pub lists: Vec<Vec<NodeId>>,
    /// Canonical structural hash per node.
    pub hashes: Vec<u64>,
    /// Subtree size in ops per node.
    pub sizes: Vec<u32>,
    /// Node always evaluates to `Bool` or `Null`.
    pub boolish: Vec<bool>,
    /// Node can never evaluate to `Err`.
    pub infallible: Vec<bool>,
    /// Ops eliminated relative to the expression this one was folded from
    /// (0 for a freshly lowered IR).
    pub folded_ops: u32,
}

/// Deterministic FNV-1a, so canonical hashes are stable across processes
/// (the default `std` hasher makes no such promise).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn hash_parts(tag: u8, children: &[u64], imm: impl FnOnce(&mut Fnv)) -> u64 {
    let mut h = Fnv::new();
    h.write_u8(tag);
    for c in children {
        h.write_u64(*c);
    }
    imm(&mut h);
    h.finish()
}

impl ExprIr {
    /// Lower an AST expression into a fresh flat IR.
    pub fn lower(e: &Expr) -> ExprIr {
        let mut ir = ExprIr {
            ops: Vec::new(),
            root: 0,
            consts: Vec::new(),
            refs: Vec::new(),
            names: Vec::new(),
            lists: Vec::new(),
            hashes: Vec::new(),
            sizes: Vec::new(),
            boolish: Vec::new(),
            infallible: Vec::new(),
            folded_ops: 0,
        };
        ir.root = ir.lower_node(e);
        ir
    }

    fn lower_node(&mut self, e: &Expr) -> NodeId {
        match e {
            Expr::Literal(v) => self.push_const(v.clone()),
            Expr::Column { qualifier, name } => {
                let key = (qualifier.clone(), name.clone());
                let idx = match self.refs.iter().position(|r| *r == key) {
                    Some(i) => i as u32,
                    None => {
                        self.refs.push(key);
                        (self.refs.len() - 1) as u32
                    }
                };
                self.push(IrOp::Ref(idx))
            }
            Expr::Param(i) => self.push(IrOp::Param(*i)),
            Expr::NamedParam(n) => {
                let idx = self.push_name(n);
                self.push(IrOp::NamedParam(idx))
            }
            Expr::Unary { op, expr } => {
                let c = self.lower_node(expr);
                self.push(IrOp::Unary { op: *op, expr: c })
            }
            Expr::Binary { left, op, right } => {
                let l = self.lower_node(left);
                let r = self.lower_node(right);
                self.push(IrOp::Binary {
                    left: l,
                    op: *op,
                    right: r,
                })
            }
            Expr::IsNull { expr, negated } => {
                let c = self.lower_node(expr);
                self.push(IrOp::IsNull {
                    expr: c,
                    negated: *negated,
                })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.lower_node(expr);
                let p = self.lower_node(pattern);
                self.push(IrOp::Like {
                    expr: v,
                    pattern: p,
                    negated: *negated,
                })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.lower_node(expr);
                let members: Vec<NodeId> = list.iter().map(|m| self.lower_node(m)).collect();
                self.lists.push(members);
                self.push(IrOp::InList {
                    expr: v,
                    list: (self.lists.len() - 1) as u32,
                    negated: *negated,
                })
            }
            Expr::FuncCall { name, args, star } => {
                let argv: Vec<NodeId> = args.iter().map(|a| self.lower_node(a)).collect();
                self.lists.push(argv);
                let n = self.push_name(name);
                self.push(IrOp::FuncCall {
                    name: n,
                    args: (self.lists.len() - 1) as u32,
                    star: *star,
                })
            }
        }
    }

    fn push_name(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    fn push_const(&mut self, v: Value) -> NodeId {
        // No pool dedup: `Value`'s SQL equality conflates `1` and `1.0`,
        // which render (and overflow) differently.
        self.consts.push(v);
        self.push(IrOp::Const((self.consts.len() - 1) as u32))
    }

    /// Append `op`, computing the per-node facts. Children must already be
    /// in the arena.
    fn push(&mut self, op: IrOp) -> NodeId {
        let (hash, size, boolish, infallible) = self.facts(&op);
        self.ops.push(op);
        self.hashes.push(hash);
        self.sizes.push(size);
        self.boolish.push(boolish);
        self.infallible.push(infallible);
        (self.ops.len() - 1) as NodeId
    }

    fn facts(&self, op: &IrOp) -> (u64, u32, bool, bool) {
        let h = |id: NodeId| self.hashes[id as usize];
        let sz = |id: NodeId| self.sizes[id as usize];
        let inf = |id: NodeId| self.infallible[id as usize];
        match op {
            IrOp::Const(c) => {
                let v = &self.consts[*c as usize];
                let hash = hash_parts(0, &[], |f| {
                    // Distinguish Int/Float/etc.: SQL-equal values of
                    // different types have different runtime semantics
                    // (checked vs IEEE arithmetic).
                    f.write_u8(match v {
                        Value::Null => 0,
                        Value::Int(_) => 1,
                        Value::Float(_) => 2,
                        Value::Text(_) => 3,
                        Value::Bool(_) => 4,
                        Value::Timestamp(_) => 5,
                        Value::Blob(_) => 6,
                    });
                    v.hash(f);
                });
                let boolish = matches!(v, Value::Bool(_) | Value::Null);
                (hash, 1, boolish, true)
            }
            IrOp::Ref(r) => {
                let (q, n) = &self.refs[*r as usize];
                let hash = hash_parts(1, &[], |f| {
                    if let Some(q) = q {
                        for b in q.as_bytes() {
                            f.write_u8(b.to_ascii_lowercase());
                        }
                    }
                    f.write_u8(0xfe);
                    for b in n.as_bytes() {
                        f.write_u8(b.to_ascii_lowercase());
                    }
                });
                (hash, 1, false, false)
            }
            IrOp::Param(i) => (hash_parts(2, &[], |f| f.write_usize(*i)), 1, false, false),
            IrOp::NamedParam(n) => (
                hash_parts(3, &[], |f| self.names[*n as usize].hash(f)),
                1,
                false,
                false,
            ),
            IrOp::Unary { op, expr } => {
                let tag = match op {
                    UnaryOp::Neg => 4,
                    UnaryOp::Not => 5,
                };
                let hash = hash_parts(tag, &[h(*expr)], |_| {});
                match op {
                    // Neg is `0 - x`: checked integer subtraction can error.
                    UnaryOp::Neg => (hash, 1 + sz(*expr), false, false),
                    UnaryOp::Not => (hash, 1 + sz(*expr), true, inf(*expr)),
                }
            }
            IrOp::Binary { left, op, right } => {
                let hash = hash_parts(6, &[h(*left), h(*right)], |f| f.write_u8(binop_tag(*op)));
                let size = 1 + sz(*left) + sz(*right);
                let kids_inf = inf(*left) && inf(*right);
                match op {
                    BinOp::And | BinOp::Or => (hash, size, true, kids_inf),
                    BinOp::Eq
                    | BinOp::NotEq
                    | BinOp::Lt
                    | BinOp::Gt
                    | BinOp::LtEq
                    | BinOp::GtEq => (hash, size, true, kids_inf),
                    // Checked integer arithmetic and division can error.
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => (hash, size, false, false),
                    // Mod degrades to NULL instead of erroring.
                    BinOp::Mod => (hash, size, false, kids_inf),
                }
            }
            IrOp::IsNull { expr, negated } => {
                let hash = hash_parts(7, &[h(*expr)], |f| f.write_u8(u8::from(*negated)));
                (hash, 1 + sz(*expr), true, inf(*expr))
            }
            IrOp::Like {
                expr,
                pattern,
                negated,
            } => {
                let hash = hash_parts(8, &[h(*expr), h(*pattern)], |f| {
                    f.write_u8(u8::from(*negated));
                });
                (
                    hash,
                    1 + sz(*expr) + sz(*pattern),
                    true,
                    inf(*expr) && inf(*pattern),
                )
            }
            IrOp::InList {
                expr,
                list,
                negated,
            } => {
                let members = &self.lists[*list as usize];
                let mut children = vec![h(*expr)];
                children.extend(members.iter().map(|m| h(*m)));
                let hash = hash_parts(9, &children, |f| f.write_u8(u8::from(*negated)));
                let size = 1 + sz(*expr) + members.iter().map(|m| sz(*m)).sum::<u32>();
                let infallible = inf(*expr) && members.iter().all(|m| inf(*m));
                (hash, size, true, infallible)
            }
            IrOp::FuncCall { name, args, star } => {
                let argv = &self.lists[*args as usize];
                let children: Vec<u64> = argv.iter().map(|a| h(*a)).collect();
                let hash = hash_parts(10, &children, |f| {
                    self.names[*name as usize].hash(f);
                    f.write_u8(u8::from(*star));
                });
                let size = 1 + argv.iter().map(|a| sz(*a)).sum::<u32>();
                (hash, size, false, false)
            }
        }
    }

    pub fn op(&self, id: NodeId) -> &IrOp {
        &self.ops[id as usize]
    }

    pub fn hash_of(&self, id: NodeId) -> u64 {
        self.hashes[id as usize]
    }

    pub fn size_of(&self, id: NodeId) -> u32 {
        self.sizes[id as usize]
    }

    pub fn is_boolish(&self, id: NodeId) -> bool {
        self.boolish[id as usize]
    }

    pub fn is_infallible(&self, id: NodeId) -> bool {
        self.infallible[id as usize]
    }

    /// The literal value of `id`, when it is a constant node.
    pub fn const_value(&self, id: NodeId) -> Option<&Value> {
        match self.op(id) {
            IrOp::Const(c) => Some(&self.consts[*c as usize]),
            _ => None,
        }
    }

    /// Pre-order walk of the subtree rooted at `id`.
    pub fn for_each(&self, id: NodeId, f: &mut impl FnMut(NodeId)) {
        f(id);
        match self.op(id) {
            IrOp::Const(_) | IrOp::Ref(_) | IrOp::Param(_) | IrOp::NamedParam(_) => {}
            IrOp::Unary { expr, .. } | IrOp::IsNull { expr, .. } => self.for_each(*expr, f),
            IrOp::Binary { left, right, .. } => {
                self.for_each(*left, f);
                self.for_each(*right, f);
            }
            IrOp::Like { expr, pattern, .. } => {
                self.for_each(*expr, f);
                self.for_each(*pattern, f);
            }
            IrOp::InList { expr, list, .. } => {
                self.for_each(*expr, f);
                for m in self.lists[*list as usize].clone() {
                    self.for_each(m, f);
                }
            }
            IrOp::FuncCall { args, .. } => {
                for a in self.lists[*args as usize].clone() {
                    self.for_each(a, f);
                }
            }
        }
    }

    /// Structural equality of two subtrees (possibly in different arenas) —
    /// the hash-collision guard for CSE grouping.
    pub fn subtree_eq(&self, id: NodeId, other: &ExprIr, oid: NodeId) -> bool {
        match (self.op(id), other.op(oid)) {
            (IrOp::Const(a), IrOp::Const(b)) => {
                let (va, vb) = (&self.consts[*a as usize], &other.consts[*b as usize]);
                std::mem::discriminant(va) == std::mem::discriminant(vb) && va == vb
            }
            (IrOp::Ref(a), IrOp::Ref(b)) => {
                let (qa, na) = &self.refs[*a as usize];
                let (qb, nb) = &other.refs[*b as usize];
                na.eq_ignore_ascii_case(nb)
                    && match (qa, qb) {
                        (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                        (None, None) => true,
                        _ => false,
                    }
            }
            (IrOp::Param(a), IrOp::Param(b)) => a == b,
            (IrOp::NamedParam(a), IrOp::NamedParam(b)) => {
                self.names[*a as usize] == other.names[*b as usize]
            }
            (IrOp::Unary { op: oa, expr: ea }, IrOp::Unary { op: ob, expr: eb }) => {
                oa == ob && self.subtree_eq(*ea, other, *eb)
            }
            (
                IrOp::Binary {
                    left: la,
                    op: oa,
                    right: ra,
                },
                IrOp::Binary {
                    left: lb,
                    op: ob,
                    right: rb,
                },
            ) => oa == ob && self.subtree_eq(*la, other, *lb) && self.subtree_eq(*ra, other, *rb),
            (
                IrOp::IsNull {
                    expr: ea,
                    negated: na,
                },
                IrOp::IsNull {
                    expr: eb,
                    negated: nb,
                },
            ) => na == nb && self.subtree_eq(*ea, other, *eb),
            (
                IrOp::Like {
                    expr: ea,
                    pattern: pa,
                    negated: na,
                },
                IrOp::Like {
                    expr: eb,
                    pattern: pb,
                    negated: nb,
                },
            ) => na == nb && self.subtree_eq(*ea, other, *eb) && self.subtree_eq(*pa, other, *pb),
            (
                IrOp::InList {
                    expr: ea,
                    list: la,
                    negated: na,
                },
                IrOp::InList {
                    expr: eb,
                    list: lb,
                    negated: nb,
                },
            ) => {
                let (ma, mb) = (&self.lists[*la as usize], &other.lists[*lb as usize]);
                na == nb
                    && ma.len() == mb.len()
                    && self.subtree_eq(*ea, other, *eb)
                    && ma
                        .iter()
                        .zip(mb.iter())
                        .all(|(x, y)| self.subtree_eq(*x, other, *y))
            }
            (
                IrOp::FuncCall {
                    name: na,
                    args: aa,
                    star: sa,
                },
                IrOp::FuncCall {
                    name: nb,
                    args: ab,
                    star: sb,
                },
            ) => {
                let (xa, xb) = (&self.lists[*aa as usize], &other.lists[*ab as usize]);
                sa == sb
                    && self.names[*na as usize] == other.names[*nb as usize]
                    && xa.len() == xb.len()
                    && xa
                        .iter()
                        .zip(xb.iter())
                        .all(|(x, y)| self.subtree_eq(*x, other, *y))
            }
            _ => false,
        }
    }

    /// Rebuild the AST subtree rooted at `id`. Rendering through the AST's
    /// own printer keeps every diagnostic span and explain string
    /// byte-identical to the pre-IR output.
    pub fn to_expr(&self, id: NodeId) -> Expr {
        match self.op(id) {
            IrOp::Const(c) => Expr::Literal(self.consts[*c as usize].clone()),
            IrOp::Ref(r) => {
                let (q, n) = &self.refs[*r as usize];
                Expr::Column {
                    qualifier: q.clone(),
                    name: n.clone(),
                }
            }
            IrOp::Param(i) => Expr::Param(*i),
            IrOp::NamedParam(n) => Expr::NamedParam(self.names[*n as usize].clone()),
            IrOp::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(self.to_expr(*expr)),
            },
            IrOp::Binary { left, op, right } => Expr::Binary {
                left: Box::new(self.to_expr(*left)),
                op: *op,
                right: Box::new(self.to_expr(*right)),
            },
            IrOp::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.to_expr(*expr)),
                negated: *negated,
            },
            IrOp::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.to_expr(*expr)),
                pattern: Box::new(self.to_expr(*pattern)),
                negated: *negated,
            },
            IrOp::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.to_expr(*expr)),
                list: self.lists[*list as usize]
                    .iter()
                    .map(|m| self.to_expr(*m))
                    .collect(),
                negated: *negated,
            },
            IrOp::FuncCall { name, args, star } => Expr::FuncCall {
                name: self.names[*name as usize].clone(),
                args: self.lists[*args as usize]
                    .iter()
                    .map(|a| self.to_expr(*a))
                    .collect(),
                star: *star,
            },
        }
    }

    /// Render the subtree rooted at `id` exactly as the AST printer would.
    pub fn render(&self, id: NodeId) -> String {
        self.to_expr(id).to_string()
    }

    /// Lazy [`std::fmt::Display`] adapter for diagnostics.
    pub fn disp(&self, id: NodeId) -> DisplayNode<'_> {
        DisplayNode { ir: self, id }
    }

    // -------------------------------------------------------------- passes

    /// Constant folding + guarded boolean simplification. Returns a new IR
    /// with `folded_ops` counting the eliminated ops. The refs pool is
    /// carried over verbatim (folding never removes a column read from the
    /// explainer side-channel — only constant subtrees fold, and the only
    /// simplification that drops a non-constant operand requires it to be
    /// infallible, hence reference-free).
    pub fn fold(&self) -> ExprIr {
        let mut out = ExprIr {
            ops: Vec::new(),
            root: 0,
            consts: Vec::new(),
            refs: self.refs.clone(),
            names: Vec::new(),
            lists: Vec::new(),
            hashes: Vec::new(),
            sizes: Vec::new(),
            boolish: Vec::new(),
            infallible: Vec::new(),
            folded_ops: 0,
        };
        out.root = self.fold_node(self.root, &mut out);
        out.folded_ops = (self.ops.len() as u32).saturating_sub(out.ops.len() as u32);
        out
    }

    fn fold_node(&self, id: NodeId, out: &mut ExprIr) -> NodeId {
        match self.op(id) {
            IrOp::Const(c) => out.push_const(self.consts[*c as usize].clone()),
            IrOp::Ref(r) => {
                // Refs were carried over verbatim; reuse the same index.
                out.push(IrOp::Ref(*r))
            }
            IrOp::Param(i) => out.push(IrOp::Param(*i)),
            IrOp::NamedParam(n) => {
                let idx = out.push_name(&self.names[*n as usize]);
                out.push(IrOp::NamedParam(idx))
            }
            IrOp::Unary { op, expr } => {
                let c = self.fold_node(*expr, out);
                if let Some(v) = out.const_value(c) {
                    if let Ok(folded) = const_unary(*op, v) {
                        out.truncate_to(c);
                        return out.push_const(folded);
                    }
                }
                // NOT (NOT x) → x when x is boolish (NOT of Bool-or-Null is
                // Bool-or-Null either way).
                if *op == UnaryOp::Not {
                    if let IrOp::Unary {
                        op: UnaryOp::Not,
                        expr: inner,
                    } = *out.op(c)
                    {
                        if out.is_boolish(inner) && inner == c - 1 {
                            out.pop_last();
                            return inner;
                        }
                    }
                }
                out.push(IrOp::Unary { op: *op, expr: c })
            }
            IrOp::Binary { left, op, right } => {
                let l = self.fold_node(*left, out);
                let r = self.fold_node(*right, out);
                if let (Some(lv), Some(rv)) = (out.const_value(l), out.const_value(r)) {
                    if let Ok(folded) = const_binary(*op, lv, rv) {
                        out.truncate_to(l);
                        return out.push_const(folded);
                    }
                }
                if let Some(simplified) = out.simplify_bool(*op, l, r) {
                    return simplified;
                }
                out.push(IrOp::Binary {
                    left: l,
                    op: *op,
                    right: r,
                })
            }
            IrOp::IsNull { expr, negated } => {
                let c = self.fold_node(*expr, out);
                if let Some(v) = out.const_value(c) {
                    let folded = Value::Bool(v.is_null() != *negated);
                    out.truncate_to(c);
                    return out.push_const(folded);
                }
                out.push(IrOp::IsNull {
                    expr: c,
                    negated: *negated,
                })
            }
            IrOp::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.fold_node(*expr, out);
                let p = self.fold_node(*pattern, out);
                if let (Some(vv), Some(pv)) = (out.const_value(v), out.const_value(p)) {
                    let folded = match (vv.as_str(), pv.as_str()) {
                        (Some(s), Some(pat)) => {
                            Value::Bool(LikeMatcher::new(pat).is_match(s) != *negated)
                        }
                        _ => Value::Null,
                    };
                    out.truncate_to(v);
                    return out.push_const(folded);
                }
                out.push(IrOp::Like {
                    expr: v,
                    pattern: p,
                    negated: *negated,
                })
            }
            IrOp::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.fold_node(*expr, out);
                let members: Vec<NodeId> = self.lists[*list as usize]
                    .iter()
                    .map(|m| self.fold_node(*m, out))
                    .collect();
                let all_const = out.const_value(v).is_some()
                    && members.iter().all(|m| out.const_value(*m).is_some());
                if all_const {
                    let scrutinee = out.const_value(v).unwrap().clone();
                    let folded = if scrutinee.is_null() {
                        Value::Null
                    } else {
                        let mut saw_null = false;
                        let mut found = false;
                        for m in &members {
                            let mv = out.const_value(*m).unwrap();
                            if mv.is_null() {
                                saw_null = true;
                            } else if *mv == scrutinee {
                                found = true;
                                break;
                            }
                        }
                        if found {
                            Value::Bool(!*negated)
                        } else if saw_null {
                            Value::Null
                        } else {
                            Value::Bool(*negated)
                        }
                    };
                    out.truncate_to(v);
                    return out.push_const(folded);
                }
                out.lists.push(members);
                out.push(IrOp::InList {
                    expr: v,
                    list: (out.lists.len() - 1) as u32,
                    negated: *negated,
                })
            }
            IrOp::FuncCall { name, args, star } => {
                let argv: Vec<NodeId> = self.lists[*args as usize]
                    .iter()
                    .map(|a| self.fold_node(*a, out))
                    .collect();
                out.lists.push(argv);
                let n = out.push_name(&self.names[*name as usize]);
                out.push(IrOp::FuncCall {
                    name: n,
                    args: (out.lists.len() - 1) as u32,
                    star: *star,
                })
            }
        }
    }

    /// Boolean identities, applied only when provably semantics-preserving.
    /// `l`/`r` are already-folded children sitting at the top of `self`
    /// (called on the output arena during folding).
    fn simplify_bool(&mut self, op: BinOp, l: NodeId, r: NodeId) -> Option<NodeId> {
        let as_const_bool = |ir: &ExprIr, id: NodeId| match ir.const_value(id) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        };
        match op {
            BinOp::And | BinOp::Or => {
                let (lc, rc) = (as_const_bool(self, l), as_const_bool(self, r));
                let neutral = op == BinOp::And; // AND's neutral is TRUE, OR's FALSE
                                                // x AND TRUE → x / x OR FALSE → x, when x is boolish.
                if rc == Some(neutral) && self.is_boolish(l) && r == self.last() {
                    self.pop_last();
                    return Some(l);
                }
                if lc == Some(neutral) && self.is_boolish(r) {
                    // TRUE AND x → x: x's subtree survives; the constant on
                    // the left stays in the arena as a dead op (harmless —
                    // counted as folded only if later truncated). Rebuild
                    // instead so the arena stays dense.
                    return Some(self.rebuild_over(l, r));
                }
                // x AND FALSE → FALSE / x OR TRUE → TRUE, only when x is
                // infallible: the runtime evaluates both operands, so
                // dropping a fallible x would mask its error (and a missing
                // LAT row in x must still poison the condition to false).
                if rc == Some(!neutral) && self.is_infallible(l) && r == self.last() {
                    self.truncate_to(l);
                    return Some(self.push_const(Value::Bool(!neutral)));
                }
                if lc == Some(!neutral) && self.is_infallible(r) && l < r && r == self.last() {
                    self.truncate_to(l);
                    return Some(self.push_const(Value::Bool(!neutral)));
                }
                None
            }
            _ => None,
        }
    }

    /// Drop the subtree headed by the dead constant at `dead` (which sits
    /// immediately before the live subtree rooted at `live`, the arena top),
    /// re-appending the live subtree so the arena stays dense. Used for
    /// `TRUE AND x → x`.
    fn rebuild_over(&mut self, dead: NodeId, live: NodeId) -> NodeId {
        debug_assert!(dead < live && live == self.last());
        let sub = self.extract(live);
        self.truncate_to(dead);
        self.append_sub(&sub)
    }

    fn last(&self) -> NodeId {
        (self.ops.len() - 1) as NodeId
    }

    fn pop_last(&mut self) {
        self.ops.pop();
        self.hashes.pop();
        self.sizes.pop();
        self.boolish.pop();
        self.infallible.pop();
    }

    /// Truncate the arena so that `first_dead` and everything after it is
    /// removed. Only valid when the removed suffix is entirely dead (its
    /// nodes are not referenced by surviving ops).
    fn truncate_to(&mut self, first_dead: NodeId) {
        let n = first_dead as usize;
        self.ops.truncate(n);
        self.hashes.truncate(n);
        self.sizes.truncate(n);
        self.boolish.truncate(n);
        self.infallible.truncate(n);
    }

    /// Clone the subtree rooted at `id` into a detached mini-IR.
    fn extract(&self, id: NodeId) -> Expr {
        self.to_expr(id)
    }

    fn append_sub(&mut self, e: &Expr) -> NodeId {
        self.lower_node(e)
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => 0,
        BinOp::NotEq => 1,
        BinOp::Lt => 2,
        BinOp::Gt => 3,
        BinOp::LtEq => 4,
        BinOp::GtEq => 5,
        BinOp::Add => 6,
        BinOp::Sub => 7,
        BinOp::Mul => 8,
        BinOp::Div => 9,
        BinOp::Mod => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

/// Display adapter produced by [`ExprIr::disp`].
pub struct DisplayNode<'a> {
    ir: &'a ExprIr,
    id: NodeId,
}

impl std::fmt::Display for DisplayNode<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.ir.to_expr(self.id).fmt(f)
    }
}

// ------------------------------------------------- constant-fold evaluation

/// Runtime-exact unary evaluation over constants. `Err` means "would error
/// at runtime" — the caller leaves the node unfolded so the error survives.
fn const_unary(op: UnaryOp, v: &Value) -> Result<Value, ()> {
    match op {
        UnaryOp::Neg => Value::Int(0).sub(v).map_err(|_| ()),
        UnaryOp::Not => Ok(match v.as_bool() {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        }),
    }
}

/// Runtime-exact binary evaluation over constants.
fn const_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value, ()> {
    Ok(match op {
        BinOp::Add => l.add(r).map_err(|_| ())?,
        BinOp::Sub => l.sub(r).map_err(|_| ())?,
        BinOp::Mul => l.mul(r).map_err(|_| ())?,
        BinOp::Div => l.div(r).map_err(|_| ())?,
        BinOp::Mod => match (l.as_i64(), r.as_i64()) {
            (Some(a), Some(b)) if b != 0 => Value::Int(a % b),
            _ => Value::Null,
        },
        BinOp::And => match (l.as_bool(), r.as_bool()) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (l.as_bool(), r.as_bool()) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        cmp => match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => Value::Bool(match cmp {
                BinOp::Eq => ord.is_eq(),
                BinOp::NotEq => !ord.is_eq(),
                BinOp::Lt => ord.is_lt(),
                BinOp::Gt => ord.is_gt(),
                BinOp::LtEq => ord.is_le(),
                BinOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            }),
        },
    })
}

// ----------------------------------------------------- precompiled matcher

/// A SQL `LIKE` pattern token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    /// `%` — any run of characters (including empty).
    Any,
    /// `_` — exactly one character.
    One,
    Lit(char),
}

/// A `LIKE` pattern compiled once at rule registration. `is_match` is
/// allocation-free (the interpreter used to collect both strings into
/// `Vec<char>` per evaluation); semantics are identical to the engine's
/// `like_match`: `%`/`_` wildcards, case-sensitive, char-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikeMatcher {
    toks: Vec<Tok>,
}

impl LikeMatcher {
    pub fn new(pattern: &str) -> LikeMatcher {
        LikeMatcher {
            toks: pattern
                .chars()
                .map(|c| match c {
                    '%' => Tok::Any,
                    '_' => Tok::One,
                    c => Tok::Lit(c),
                })
                .collect(),
        }
    }

    /// Two-pointer match with backtracking on the last `%`. `si` walks byte
    /// offsets but always lands on char boundaries, so the semantics match
    /// the char-vector interpreter exactly.
    pub fn is_match(&self, s: &str) -> bool {
        let t = &self.toks;
        let (mut si, mut pi) = (0usize, 0usize);
        let mut star: Option<(usize, usize)> = None;
        while si < s.len() {
            let c = s[si..].chars().next().expect("si on char boundary");
            let step = c.len_utf8();
            // Branch order mirrors the engine matcher, including its quirk
            // that the literal-equality test runs before the wildcard test:
            // a `%` pattern char consumes a literal `%` subject char first.
            let lit_match = pi < t.len()
                && match t[pi] {
                    Tok::One => true,
                    Tok::Lit(l) => l == c,
                    Tok::Any => c == '%',
                };
            if lit_match {
                si += step;
                pi += 1;
            } else if pi < t.len() && t[pi] == Tok::Any {
                star = Some((pi, si));
                pi += 1;
            } else if let Some((sp, ss)) = star {
                let skip = s[ss..].chars().next().expect("ss on char boundary");
                pi = sp + 1;
                si = ss + skip.len_utf8();
                star = Some((sp, si));
            } else {
                return false;
            }
        }
        while pi < t.len() && t[pi] == Tok::Any {
            pi += 1;
        }
        pi == t.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_expression;

    fn ir_of(s: &str) -> ExprIr {
        ExprIr::lower(&parse_expression(s).unwrap())
    }

    #[test]
    fn lowering_round_trips_through_the_ast_printer() {
        for s in [
            "Query.Duration > 5 * Duration_LAT.Avg_Duration AND Duration_LAT.N >= 30",
            "NOT (A.X = 1) OR B.Y IS NOT NULL",
            "Query.Query_Text LIKE 'SELECT%'",
            "Query.User NOT IN ('admin', 'system', NULL)",
            "-(A.X + 1) / 2 % 3",
            "'it''s' = A.S",
        ] {
            let e = parse_expression(s).unwrap();
            let ir = ExprIr::lower(&e);
            assert_eq!(ir.render(ir.root), e.to_string(), "{s}");
            assert_eq!(ir.size_of(ir.root) as usize, ir.ops.len(), "{s}");
        }
    }

    #[test]
    fn canonical_hashes_are_case_insensitive_and_structural() {
        let a = ir_of("d_lat.n >= 30");
        let b = ir_of("D_LAT.N >= 30");
        assert_eq!(a.hash_of(a.root), b.hash_of(b.root));
        assert!(a.subtree_eq(a.root, &b, b.root));
        let c = ir_of("D_LAT.N >= 31");
        assert_ne!(a.hash_of(a.root), c.hash_of(c.root));
        // No commutative normalization: operand order is error order.
        let x = ir_of("A.X > 0 AND B.Y > 0");
        let y = ir_of("B.Y > 0 AND A.X > 0");
        assert_ne!(x.hash_of(x.root), y.hash_of(y.root));
        // Int and Float literals are semantically different constants.
        let i = ir_of("A.X > 1");
        let f = ir_of("A.X > 1.0");
        assert_ne!(i.hash_of(i.root), f.hash_of(f.root));
    }

    #[test]
    fn constant_folding_matches_runtime_semantics() {
        for (src, want) in [
            ("1 + 2 * 3", "7"),
            ("10 / 4", "2"),
            ("10.0 / 4", "2.5"),
            ("7 % 4", "3"),
            ("1 < 2", "TRUE"),
            ("'abc' LIKE 'a%'", "TRUE"),
            ("'abc' NOT LIKE 'a%'", "FALSE"),
            ("3 IN (1, 2, 3)", "TRUE"),
            ("4 IN (1, 2, NULL)", "NULL"),
            ("NULL IS NULL", "TRUE"),
            ("NOT TRUE", "FALSE"),
            ("-(2 + 3)", "-5"),
        ] {
            let ir = ir_of(src).fold();
            assert_eq!(ir.render(ir.root), want, "{src}");
            assert_eq!(ir.ops.len(), 1, "{src} should fold to one op");
        }
    }

    #[test]
    fn erroring_subtrees_are_left_unfolded() {
        // Division by zero errors at runtime; folding must preserve that.
        let ir = ir_of("1 / 0").fold();
        assert_eq!(ir.render(ir.root), "1 / 0");
        assert_eq!(ir.folded_ops, 0);
        // Type errors too.
        let ir = ir_of("1 + 'x'").fold();
        assert_eq!(ir.render(ir.root), "1 + 'x'");
    }

    #[test]
    fn boolean_identities_are_guarded() {
        // x AND TRUE → x (x boolish).
        let ir = ir_of("A.X > 1 AND TRUE").fold();
        assert_eq!(ir.render(ir.root), "A.X > 1");
        assert!(ir.folded_ops > 0);
        let ir = ir_of("TRUE AND A.X > 1").fold();
        assert_eq!(ir.render(ir.root), "A.X > 1");
        // x OR FALSE → x.
        let ir = ir_of("A.X > 1 OR FALSE").fold();
        assert_eq!(ir.render(ir.root), "A.X > 1");
        // x AND FALSE stays: x reads a column and can error (or poison via
        // a missing LAT row), so the operand must still be evaluated.
        let ir = ir_of("A.X > 1 AND FALSE").fold();
        assert_eq!(ir.render(ir.root), "A.X > 1 AND FALSE");
        // But an infallible x folds away.
        let ir = ir_of("1 < 2 AND FALSE").fold();
        assert_eq!(ir.render(ir.root), "FALSE");
        // NOT NOT x → x when x is boolish.
        let ir = ir_of("NOT (NOT (A.X > 1))").fold();
        assert_eq!(ir.render(ir.root), "A.X > 1");
        // A non-boolish operand blocks the AND-identity: `A.X AND TRUE` is
        // NULL for non-boolean A.X, not A.X itself.
        let ir = ir_of("A.X AND TRUE").fold();
        assert_eq!(ir.render(ir.root), "A.X AND TRUE");
    }

    #[test]
    fn folding_preserves_the_refs_side_channel() {
        let ir = ir_of("A.X > 1 AND TRUE AND B.Y < 2");
        let folded = ir.fold();
        assert_eq!(ir.refs, folded.refs);
        assert_eq!(
            folded.refs,
            vec![
                (Some("A".into()), "X".into()),
                (Some("B".into()), "Y".into())
            ]
        );
    }

    #[test]
    fn like_matcher_agrees_with_reference_semantics() {
        // Reference implementation: the engine's char-vector matcher.
        fn reference(s: &str, pattern: &str) -> bool {
            let s: Vec<char> = s.chars().collect();
            let p: Vec<char> = pattern.chars().collect();
            let (mut si, mut pi) = (0usize, 0usize);
            let mut star: Option<(usize, usize)> = None;
            while si < s.len() {
                if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
                    si += 1;
                    pi += 1;
                } else if pi < p.len() && p[pi] == '%' {
                    star = Some((pi, si));
                    pi += 1;
                } else if let Some((sp, ss)) = star {
                    pi = sp + 1;
                    si = ss + 1;
                    star = Some((sp, ss + 1));
                } else {
                    return false;
                }
            }
            while pi < p.len() && p[pi] == '%' {
                pi += 1;
            }
            pi == p.len()
        }
        let subjects = [
            "",
            "a",
            "abc",
            "SELECT * FROM t",
            "aaab",
            "ábç",
            "%literal%",
            "a_b",
        ];
        let patterns = [
            "", "%", "_", "a%", "%c", "%b%", "a_c", "%%", "a%b%c", "ábç", "á%", "_b_", "%ab%ab%",
            "SELECT%",
        ];
        for s in subjects {
            for p in patterns {
                assert_eq!(
                    LikeMatcher::new(p).is_match(s),
                    reference(s, p),
                    "s={s:?} p={p:?}"
                );
            }
        }
    }
}
