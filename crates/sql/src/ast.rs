//! Abstract syntax tree for the supported SQL subset.
//!
//! Every node implements `Display`, printing canonical SQL. The printer is used
//! by tests (parse → print → parse round-trips) and by the engine when it needs a
//! normalized `Query.Text` probe value.

use std::fmt;

use sqlcm_common::{DataType, Value};

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
}

impl BinOp {
    /// Binding power for the pretty-printer (mirrors parser precedence).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Gt | BinOp::LtEq | BinOp::GtEq => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::LtEq => "<=",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// A scalar or boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A possibly-qualified column (`t.a` or `a`). Rule conditions reuse this for
    /// `Class.Attribute` and `Lat.Column` references.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Positional parameter `?` (0-based ordinal assigned by the parser).
    Param(usize),
    /// Named parameter `@name` (stored-procedure bodies).
    NamedParam(String),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// Function call — scalar (`ABS`) or aggregate (`SUM`, `AVG`, `COUNT`, …).
    /// `COUNT(*)` is represented with `star == true` and empty `args`.
    FuncCall {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` with `%`/`_` wildcards.
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qcol(q: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn bin(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Visit every sub-expression (pre-order), including `self`.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::FuncCall { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Count atomic (non-logical) conditions — used by the Figure 2 bench to
    /// report "number of atomic conditions" per rule exactly as the paper does.
    pub fn atomic_condition_count(&self) -> usize {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And | BinOp::Or,
                right,
            } => left.atomic_condition_count() + right.atomic_condition_count(),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => expr.atomic_condition_count(),
            _ => 1,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Literal(Value::Text(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Param(_) => write!(f, "?"),
            Expr::NamedParam(n) => write!(f, "@{n}"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    write!(f, "-")?;
                    expr.fmt_prec(f, 7)
                }
                UnaryOp::Not => {
                    write!(f, "NOT ")?;
                    expr.fmt_prec(f, 3)
                }
            },
            Expr::Binary { left, op, right } => {
                let p = op.precedence();
                let need = p < parent;
                if need {
                    write!(f, "(")?;
                }
                left.fmt_prec(f, p)?;
                write!(f, " {op} ")?;
                right.fmt_prec(f, p + 1)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::FuncCall { name, args, star } => {
                write!(f, "{name}(")?;
                if *star {
                    write!(f, "*")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                expr.fmt_prec(f, 7)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                expr.fmt_prec(f, 7)?;
                write!(f, " {}LIKE ", if *negated { "NOT " } else { "" })?;
                pattern.fmt_prec(f, 7)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                expr.fmt_prec(f, 7)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// `FROM`-clause table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// Name the executor binds columns against (alias wins).
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An `INNER JOIN … ON …` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub table: TableRef,
    pub on: Expr,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub desc: bool,
}

/// One item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    Wildcard,
    Expr { expr: Expr, alias: Option<String> },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub joins: Vec<Join>,
    pub predicate: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

/// Any statement the engine accepts.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
        primary_key: Vec<String>,
    },
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
    },
    DropTable {
        name: String,
    },
    Begin,
    Commit,
    Rollback,
    Exec {
        procedure: String,
        args: Vec<Expr>,
    },
    /// `EXPLAIN <statement>` — returns the chosen physical plan as text rows.
    Explain(Box<Statement>),
}

impl Statement {
    /// Positional parameter count (`?` placeholders) in this statement.
    pub fn param_count(&self) -> usize {
        let mut max: Option<usize> = None;
        let mut visit = |e: &Expr| {
            e.walk(&mut |e| {
                if let Expr::Param(i) = e {
                    max = Some(max.map_or(*i, |m: usize| m.max(*i)));
                }
            })
        };
        match self {
            Statement::Select(s) => {
                for it in &s.items {
                    if let SelectItem::Expr { expr, .. } = it {
                        visit(expr);
                    }
                }
                for j in &s.joins {
                    visit(&j.on);
                }
                if let Some(p) = &s.predicate {
                    visit(p);
                }
                for g in &s.group_by {
                    visit(g);
                }
                if let Some(h) = &s.having {
                    visit(h);
                }
                for o in &s.order_by {
                    visit(&o.expr);
                }
            }
            Statement::Insert { rows, .. } => {
                for r in rows {
                    for e in r {
                        visit(e);
                    }
                }
            }
            Statement::Update {
                assignments,
                predicate,
                ..
            } => {
                for (_, e) in assignments {
                    visit(e);
                }
                if let Some(p) = predicate {
                    visit(p);
                }
            }
            Statement::Delete {
                predicate: Some(p), ..
            } => visit(p),
            Statement::Exec { args, .. } => {
                for a in args {
                    visit(a);
                }
            }
            Statement::Explain(inner) => return inner.param_count(),
            _ => {}
        }
        max.map_or(0, |m| m + 1)
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match it {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {}", from.name)?;
            if let Some(a) = &from.alias {
                write!(f, " AS {a}")?;
            }
            for j in &self.joins {
                write!(f, " JOIN {}", j.table.name)?;
                if let Some(a) = &j.table.alias {
                    write!(f, " AS {a}")?;
                }
                write!(f, " ON {}", j.on)?;
            }
        }
        if let Some(p) = &self.predicate {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { table, predicate } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::CreateTable {
                name,
                columns,
                primary_key,
            } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.data_type)?;
                    if c.not_null {
                        write!(f, " NOT NULL")?;
                    }
                }
                if !primary_key.is_empty() {
                    write!(f, ", PRIMARY KEY ({})", primary_key.join(", "))?;
                }
                write!(f, ")")
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => write!(f, "CREATE INDEX {name} ON {table} ({})", columns.join(", ")),
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
            Statement::Exec { procedure, args } => {
                write!(f, "EXEC {procedure}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_respects_precedence() {
        // (1 + 2) * 3 must keep its parens.
        let e = Expr::bin(
            Expr::bin(Expr::lit(1), BinOp::Add, Expr::lit(2)),
            BinOp::Mul,
            Expr::lit(3),
        );
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        // 1 + 2 * 3 does not need parens.
        let e = Expr::bin(
            Expr::lit(1),
            BinOp::Add,
            Expr::bin(Expr::lit(2), BinOp::Mul, Expr::lit(3)),
        );
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn atomic_condition_count() {
        let atom = |n: i64| Expr::bin(Expr::col("a"), BinOp::Gt, Expr::lit(n));
        let e = Expr::bin(Expr::bin(atom(1), BinOp::And, atom(2)), BinOp::Or, atom(3));
        assert_eq!(e.atomic_condition_count(), 3);
        assert_eq!(atom(0).atomic_condition_count(), 1);
    }

    #[test]
    fn string_literal_is_requoted() {
        let e = Expr::lit("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn param_count() {
        let s = Statement::Select(SelectStmt {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef {
                name: "t".into(),
                alias: None,
            }),
            predicate: Some(Expr::bin(
                Expr::bin(Expr::col("a"), BinOp::Eq, Expr::Param(0)),
                BinOp::And,
                Expr::bin(Expr::col("b"), BinOp::Eq, Expr::Param(1)),
            )),
            ..Default::default()
        });
        assert_eq!(s.param_count(), 2);
        assert_eq!(Statement::Begin.param_count(), 0);
    }
}
