//! Facade crate for the SQLCM reproduction.
//!
//! Re-exports the workspace's public surface so examples, integration tests,
//! and downstream users can depend on one crate:
//!
//! * [`engine`] — the host relational engine (`sqlcm-engine`);
//! * [`monitor`] — SQLCM itself: LATs + ECA rules (`sqlcm-core`);
//! * [`baselines`] — Query_logging / PULL / PULL_history (`sqlcm-baselines`);
//! * [`workloads`] — TPC-H-lite generator and workload drivers
//!   (`sqlcm-workloads`);
//! * [`telemetry`] — lock-free metric primitives behind the monitor's
//!   self-telemetry (`sqlcm-telemetry`);
//! * [`common`], [`sql`], [`storage`] — the substrates.
//!
//! See `README.md` for a tour and `DESIGN.md` for the paper-to-module map.

pub use sqlcm_baselines as baselines;
pub use sqlcm_common as common;
pub use sqlcm_core as monitor;
pub use sqlcm_engine as engine;
pub use sqlcm_sql as sql;
pub use sqlcm_storage as storage;
pub use sqlcm_telemetry as telemetry;
pub use sqlcm_workloads as workloads;

/// Convenience prelude with the names almost every user needs.
pub mod prelude {
    pub use sqlcm_baselines::{PullHistory, PullMonitor, QueryLogging};
    pub use sqlcm_common::{Error, Result, Value};
    pub use sqlcm_core::{
        chrome_trace_json, Action, Lat, LatAggFunc, LatSpec, Rule, RuleEvent, SpanKind, Sqlcm,
        TelemetrySnapshot, TraceSampling, TraceSnapshot,
    };
    pub use sqlcm_engine::{Engine, EngineConfig, Session};
}
