//! Causal tracing demo: run a cascading workload under sampling, print the
//! provenance trees, and export the traces as a Chrome trace-event file
//! loadable in `chrome://tracing` / Perfetto.
//!
//! The workload is the paper's eviction cascade: commits feed a bounded
//! top-K LAT; once it is full, every new template evicts a row, and the
//! eviction event — dispatched in the same batch, one cascade hop deeper —
//! fires an archival rule. Sampled traces capture the whole chain: event →
//! rule (with its "why it fired" explainer) → action → LAT mutation →
//! cascaded eviction event.
//!
//! ```sh
//! cargo run --release --example trace_export            # writes sqlcm_trace.json
//! cargo run --release --example trace_export -- out.json
//! ```

use sqlcm_repro::common::{EngineEvent, QueryInfo};
use sqlcm_repro::monitor::ClassName;
use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{mixed, run_queries, tpch};

fn main() -> Result<()> {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sqlcm_trace.json".to_string());

    let engine = Engine::in_memory();
    let db = tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 500,
            parts: 100,
            customers: 50,
            seed: 7,
        },
    )?;
    engine.execute_batch("CREATE TABLE evicted_templates (sig INT, n INT);")?;

    let sqlcm = Sqlcm::attach(&engine);
    // A small bounded LAT so the workload overflows it quickly: the busiest
    // 8 templates stay, everything else cascades out as eviction events.
    sqlcm.define_lat(
        LatSpec::new("Busy")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .order_by("N", true)
            .max_rows(8),
    )?;
    sqlcm.add_rule(
        Rule::new("feed")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Busy")),
    )?;
    // Conditioned rule: its trace spans carry the bound-value explainer.
    sqlcm.add_rule(
        Rule::new("hot")
            .on(RuleEvent::QueryCommit)
            .when("Busy.N >= 100")
            .then(Action::send_mail("dba@example.org", "hot template")),
    )?;
    // Cascade consumer: archive what the LAT evicts (§4.3 — evicted rows are
    // monitored objects).
    sqlcm.add_rule(
        Rule::new("archive")
            .on(RuleEvent::LatEviction("Busy".into()))
            .then(Action::PersistObject {
                table: "evicted_templates".into(),
                class: ClassName::Evicted("Busy".into()),
                attrs: vec!["Sig".into(), "N".into()],
            }),
    )?;

    // Sample one commit in 16; eviction hops ride in their root's trace.
    sqlcm.set_trace_sampling(TraceSampling::EveryNth(16));

    let workload = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 2_000,
            join_selects: 20,
            seed: 1234,
        },
    );
    run_queries(&engine, &workload)?;

    // The mixed workload reuses a handful of templates, so the bounded LAT
    // rarely overflows. A burst of one-off templates churns it: every new
    // signature past the 8-row bound evicts a row, and the eviction event
    // cascades through the "archive" rule inside the same trace.
    sqlcm.set_trace_sampling(TraceSampling::EveryNth(2));
    for sig in 1_000..1_064u64 {
        let mut q = QueryInfo::synthetic(sig, format!("SELECT /* one-off {sig} */ 1"));
        q.logical_signature = Some(sig);
        q.duration_micros = 1_000;
        sqlcm.inject_event(&EngineEvent::QueryCommit(q));
    }

    let traces = sqlcm.traces();
    let tracing = sqlcm.telemetry().tracing;
    println!(
        "sampled {} of {} events ({} trace(s) retained, {} dropped, deepest cascade {})\n",
        tracing.sampled,
        sqlcm.stats().events,
        traces.len(),
        tracing.dropped,
        tracing.max_cascade_depth,
    );

    // Print the deepest trace and the most recent one as text trees.
    if let Some(deepest) = traces.iter().max_by_key(|t| t.max_cascade_depth) {
        println!("deepest trace:\n{}", deepest.to_text_tree());
    }
    if let Some(last) = traces.last() {
        println!("most recent trace:\n{}", last.to_text_tree());
    }

    let json = chrome_trace_json(&traces);
    std::fs::write(&out_path, &json)?;
    println!(
        "wrote {} traces ({} bytes) to {out_path} — load it in chrome://tracing",
        traces.len(),
        json.len()
    );

    // Sanity for CI: the sampled cascade must be visible end to end.
    assert!(!traces.is_empty(), "sampling collected no traces");
    let cascaded: Vec<&TraceSnapshot> =
        traces.iter().filter(|t| t.max_cascade_depth >= 1).collect();
    assert!(
        !cascaded.is_empty(),
        "no sampled trace observed an eviction cascade"
    );
    assert!(
        tracing.max_cascade_depth as usize <= sqlcm.cascade_depth_bound(),
        "observed cascade depth {} exceeds the analyzer bound {}",
        tracing.max_cascade_depth,
        sqlcm.cascade_depth_bound()
    );
    for t in &cascaded {
        let evict = t
            .spans
            .iter()
            .find(|s| matches!(&s.kind, SpanKind::Event { depth, .. } if *depth > 0))
            .expect("cascaded trace has a deferred event span");
        let cause = evict.cause.expect("cascaded event links its cause");
        assert!(
            matches!(t.spans[cause as usize].kind, SpanKind::LatMutation { .. }),
            "cascade cause must be the LAT mutation"
        );
    }
    assert!(json.starts_with("{\"traceEvents\":["), "export shape");
    let archived = engine.query("SELECT COUNT(*) FROM evicted_templates")?;
    println!("archived evictions: {archived:?}");
    Ok(())
}
