//! Example 2 of the paper: detecting poor blocking behaviour.
//!
//! "For each statement, we need to track the total time for which it blocked
//! other statements. … This task would be specified in the SQLCM framework as a
//! simple ECA rule triggered by any statement S releasing a lock resource other
//! statements are waiting on. For each of the blocked statements, the time it
//! has been waiting on the lock resource is then added to the total waiting
//! time for S."
//!
//! ```sh
//! cargo run --release --example blocking_hotspots
//! ```

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{blocking, tpch};

fn main() -> Result<()> {
    let engine = Engine::in_memory();
    tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 500,
            parts: 50,
            customers: 50,
            seed: 1,
        },
    )?;
    let sqlcm = Sqlcm::attach(&engine);

    // Per blocking statement: total delay inflicted on others, episode count,
    // and the worst single episode.
    sqlcm.define_lat(
        LatSpec::new("Blockers")
            .group_by("Blocker.Query_Text", "Statement")
            .aggregate(LatAggFunc::Sum, "Blocker.Wait_Time", "Total_Delay")
            .aggregate(LatAggFunc::Count, "", "Episodes")
            .aggregate(LatAggFunc::Max, "Blocker.Wait_Time", "Worst_Episode")
            .order_by("Total_Delay", true)
            .max_rows(100),
    )?;
    // A LAT folds objects of one class; the Blocker object carries the pair's
    // Wait_Time (how long the victim waited on it), so grouping by the blocking
    // statement while summing Wait_Time is a single-class aggregation.
    sqlcm.add_rule(
        Rule::new("track_blocking")
            .on(RuleEvent::BlockReleased)
            .then(Action::insert("Blockers")),
    )?;

    // Also alert on individual long blocks (> 50 ms here; "more than 10
    // seconds" in the paper's intro example).
    sqlcm.add_rule(
        Rule::new("long_block_alert")
            .on(RuleEvent::BlockReleased)
            .when("Blocked.Wait_Time > 0.05")
            .then(Action::send_mail(
                "dba@example.org",
                "'{Blocker.Query_Text}' blocked '{Blocked.Query_Text}' for {Blocked.Wait_Time}s on {Blocker.Resource}",
            )),
    )?;

    // Drive contention: writers holding locks on two hot order rows.
    let stats = blocking::run(
        &engine,
        blocking::BlockingConfig {
            writers: 3,
            readers: 6,
            iterations: 15,
            hold: std::time::Duration::from_millis(8),
            hot_rows: 2,
        },
    );

    let lat = sqlcm.lat("Blockers").unwrap();
    println!("=== blocking hotspots (total delay caused, descending) ===");
    println!(
        "{:>12} {:>9} {:>14}  statement",
        "total delay", "episodes", "worst episode"
    );
    for row in lat.rows_ordered() {
        println!(
            "{:>11.4}s {:>9} {:>13.4}s  {}",
            row[1].as_f64().unwrap_or(0.0),
            row[2],
            row[3].as_f64().unwrap_or(0.0),
            row[0]
        );
    }
    println!();
    println!(
        "workload: {} commits, {} selects, {} errors in {:?}",
        stats.writer_commits, stats.reader_selects, stats.errors, stats.elapsed
    );
    println!("long-block alerts: {}", sqlcm.outbox().len());
    assert!(lat.row_count() > 0, "contention must have been recorded");
    Ok(())
}
