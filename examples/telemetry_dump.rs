//! Self-telemetry exporter: run a mixed workload under a handful of rules and
//! dump everything the monitor knows about itself — per-probe counts and
//! `on_event` latency, per-rule evaluation/fire/action counts with condition
//! and action latency, per-LAT occupancy, and the flight recorder of recent
//! firings.
//!
//! ```sh
//! cargo run --release --example telemetry_dump          # text report
//! cargo run --release --example telemetry_dump -- --json
//! ```

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{mixed, run_queries, tpch};

fn main() -> Result<()> {
    let json = std::env::args().any(|a| a == "--json");

    let engine = Engine::in_memory();
    let db = tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 1_000,
            parts: 200,
            customers: 100,
            seed: 42,
        },
    )?;
    engine.execute_batch("CREATE TABLE health_log (name TEXT, events INT, fires INT);")?;

    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.define_topk_duration_lat("TopK", 10)?;
    sqlcm.define_lat(
        LatSpec::new("Templates")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration")
            .order_by("N", true)
            .max_rows(100),
    )?;
    sqlcm.add_rule(
        Rule::new("track_topk")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("TopK")),
    )?;
    sqlcm.add_rule(
        Rule::new("track_templates")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Templates")),
    )?;
    sqlcm.add_rule(
        Rule::new("slow_alert")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 0.5")
            .then(Action::send_mail("dba@example.org", "slow: {Query.ID}")),
    )?;
    // Two rules conditioned on the same LAT: the dispatch plan hoists the
    // shared lookup so one row snapshot per event serves both conditions.
    sqlcm.add_rule(
        Rule::new("hot_template")
            .on(RuleEvent::QueryCommit)
            .when("Templates.N >= 500 AND Templates.Avg_Duration > 0.2")
            .then(Action::send_mail("dba@example.org", "hot template")),
    )?;
    sqlcm.add_rule(
        Rule::new("busy_template")
            .on(RuleEvent::QueryCommit)
            .when("Templates.N >= 2000")
            .then(Action::send_mail("dba@example.org", "busy template")),
    )?;
    // Self-monitoring bridge: the monitor's own health flows back through the
    // rule pipeline as a synthetic Monitor object.
    sqlcm.add_rule(
        Rule::new("watch_self")
            .on(RuleEvent::MonitorTick)
            .when("Monitor.Events >= 0")
            .then(Action::persist_object(
                "health_log",
                "Monitor",
                &["Name", "Events", "Fires"],
            )),
    )?;

    // Sample a slice of events so the snapshot's tracing section is live
    // (see examples/trace_export.rs for the full causal-tracing tour).
    sqlcm.set_trace_sampling(TraceSampling::EveryNth(64));

    let workload = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 3_000,
            join_selects: 10,
            seed: 4242,
        },
    );
    let stats = run_queries(&engine, &workload)?;
    sqlcm.poll_self_monitor();

    let snapshot = sqlcm.telemetry();
    if json {
        println!("{}", snapshot.to_json());
    } else {
        println!(
            "workload: {} queries in {:.2}s ({:.0} q/s)\n",
            workload.len(),
            stats.elapsed.as_secs_f64(),
            stats.qps()
        );
        print!("{}", snapshot.to_text());
        let plan = sqlcm.plan_summary();
        println!(
            "\ndispatch plan: epoch={} rules={} (rebuilds={}, hoisted hits={}, LAT row fetches={})",
            plan.epoch,
            plan.rule_count,
            snapshot.dispatch.plan_rebuilds,
            snapshot.dispatch.hoisted_lookup_hits,
            snapshot.dispatch.lat_row_fetches
        );
        println!(
            "guard index: {} rule(s) indexed, {} residual; {:.2} candidate rule(s) \
             per probed event ({} pruned without evaluation)",
            plan.guard_indexed_rules,
            plan.guard_residual_rules,
            snapshot.matching.candidate_rules_per_event(),
            snapshot.matching.rules_pruned,
        );
        for g in plan.shared_groups() {
            println!("  shared hoist on {}: {} <- {:?}", g.event, g.lat, g.rules);
        }
        let health = engine.query("SELECT name, events, fires FROM health_log")?;
        println!("\nself-monitoring rows (Monitor.Tick → health_log): {health:?}");
    }

    // Sanity for CI: attribution must partition the global counters.
    let probe_sum: u64 = snapshot.probes.iter().map(|p| p.events).sum();
    assert_eq!(probe_sum, snapshot.stats.events, "probe attribution leak");
    assert!(
        snapshot.rules.iter().any(|r| r.fires > 0),
        "workload fired no rules"
    );
    assert!(!snapshot.flight_records.is_empty(), "flight recorder empty");
    // The two Templates-conditioned rules share one hoisted lookup, so hits
    // accrue and the plan was republished once per registration.
    assert!(
        sqlcm.plan_summary().shared_groups().next().is_some(),
        "no shared hoist group"
    );
    assert!(
        snapshot.dispatch.hoisted_lookup_hits > 0,
        "hoisted lookups never shared"
    );
    assert!(snapshot.dispatch.plan_rebuilds >= 6, "plan not republished");
    assert!(snapshot.tracing.sampled > 0, "tracing section is empty");
    // The QueryCommit plan has one indexable rule (`slow_alert`'s range
    // guard), so every commit is probed and the matching slice is live.
    assert!(
        sqlcm.plan_summary().guard_indexed_rules >= 1,
        "no indexed rule"
    );
    assert!(
        snapshot.matching.guard_probes > 0,
        "guard index never probed"
    );
    assert!(
        snapshot.matching.residual_rules > 0,
        "LAT readers must be residual"
    );
    Ok(())
}
