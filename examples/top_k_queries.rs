//! Example 3 of the paper: identifying the top-k most expensive queries.
//!
//! "This task would be specified in the SQLCM framework using a LAT storing the
//! queries, and an ECA rule that inserts every query after it commits into the
//! LAT. The LAT is specified in such a way that it only stores k entries
//! ordered by Query.Duration, thus maintaining the top k queries by duration at
//! all times."
//!
//! Runs the paper's mixed workload (point selects + large joins — the joins are
//! the expensive queries that must surface), then persists the LAT.
//!
//! ```sh
//! cargo run --release --example top_k_queries
//! ```

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{mixed, run_queries, tpch};

fn main() -> Result<()> {
    let engine = Engine::in_memory();
    println!("loading TPC-H-lite …");
    let db = tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 5_000,
            parts: 500,
            customers: 200,
            seed: 42,
        },
    )?;
    engine.execute_batch(
        "CREATE TABLE top_queries (sig INT, duration FLOAT, qtext TEXT, at TIMESTAMP);",
    )?;

    let sqlcm = Sqlcm::attach(&engine);
    let k = 10;
    sqlcm.define_lat(
        LatSpec::new("TopK")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Max, "Query.Duration", "Duration")
            .aggregate(LatAggFunc::Last, "Query.Query_Text", "Query_Text")
            .order_by("Duration", true)
            .max_rows(k),
    )?;
    sqlcm.add_rule(
        Rule::new("track")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("TopK")),
    )?;

    let workload = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 4_000,
            join_selects: 20,
            seed: 4242,
        },
    );
    println!("running {} queries …", workload.len());
    let stats = run_queries(&engine, &workload)?;
    println!(
        "workload done: {:.2}s, {:.0} q/s, {} rows returned",
        stats.elapsed.as_secs_f64(),
        stats.qps(),
        stats.rows_returned
    );

    // Persist the LAT to a table — "the ability to persist LATs allows more
    // complex SQL post-processing" (§4.3).
    sqlcm.persist_lat("TopK", "top_queries")?;
    let rows = engine.query("SELECT duration, qtext FROM top_queries ORDER BY duration DESC")?;
    println!();
    println!("=== top {k} most expensive query templates ===");
    for row in &rows {
        println!("{:>10.6}s  {}", row[0].as_f64().unwrap_or(0.0), row[1]);
    }
    // The expensive 3-way joins must dominate the top slots.
    let top_text = rows[0][1].as_str().unwrap_or("");
    assert!(
        top_text.contains("JOIN"),
        "the most expensive template should be the 3-way join, got: {top_text}"
    );
    Ok(())
}
