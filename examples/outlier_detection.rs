//! Example 1 of the paper: detecting outlier invocations of a stored procedure.
//!
//! A `Duration_LAT` maintains the (aging) average duration per code-path
//! signature; a rule persists any invocation running 5× slower than its
//! template's average. The workload mixes a cheap and an expensive code path of
//! `get_order`, plus a handful of artificially slowed invocations that the rule
//! must catch.
//!
//! ```sh
//! cargo run --release --example outlier_detection
//! ```

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{procs, tpch};

fn main() -> Result<()> {
    let engine = Engine::in_memory();
    let db = tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 2_000,
            parts: 200,
            customers: 100,
            seed: 42,
        },
    )?;
    procs::register(&engine)?;
    engine.execute_batch("CREATE TABLE outliers (qtext TEXT, duration FLOAT);")?;

    let sqlcm = Sqlcm::attach(&engine);
    // The paper's Duration_LAT, with an aging average (baseline performance may
    // drift over time, §4.3): 60 s window, 5 s blocks.
    sqlcm.define_lat(
        LatSpec::new("Duration_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration")
            .aging(60_000_000, 5_000_000)
            .aggregate(LatAggFunc::Count, "", "N")
            .order_by("N", true)
            .max_rows(100),
    )?;
    // Rule 1 (paper, §5.2): report instances 5× slower than their average.
    sqlcm.add_rule(
        Rule::new("report_outliers")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 5 * Duration_LAT.Avg_Duration AND Duration_LAT.N >= 10")
            .then(Action::persist_object(
                "outliers",
                "Query",
                &["Query_Text", "Duration"],
            ))
            .then(Action::send_mail(
                "dba@example.org",
                "outlier: {Query.Query_Text} took {Query.Duration}s (avg {Duration_LAT.Avg_Duration}s)",
            )),
    )?;
    // Rule 2: maintain the LAT. Registered after rule 1 so an outlier is judged
    // against the average of *previous* instances.
    sqlcm.add_rule(
        Rule::new("track_durations")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Duration_LAT")),
    )?;

    // Normal traffic: builds per-code-path baselines.
    let invocations = procs::invocations(&db, 2_000, 0.2, 7);
    procs::run(&engine, &invocations)?;

    // A few pathological invocations: the same EXEC but artificially delayed by
    // holding a lock from another session (a realistic "bad day" scenario).
    let mut blocker = engine.connect("batch", "nightly");
    let mut app = engine.connect("app", "proc_workload");
    for _ in 0..3 {
        blocker.execute("BEGIN")?;
        blocker.execute("UPDATE orders SET o_totalprice = o_totalprice WHERE o_orderkey = 1")?;
        // The EXEC's point select on order 1 blocks behind the update lock;
        // run it on its own thread and release the lock 300 ms later.
        let handle = std::thread::spawn(move || {
            let r = app.execute("EXEC get_order(0, 1)");
            r.map(|_| app)
        });
        std::thread::sleep(std::time::Duration::from_millis(300));
        blocker.execute("COMMIT")?;
        app = handle.join().expect("EXEC thread")?;
    }

    let report = engine.query("SELECT qtext, duration FROM outliers")?;
    println!("=== outlier invocations detected: {} ===", report.len());
    for row in &report {
        println!("  {:>9.4}s  {}", row[1].as_f64().unwrap_or(0.0), row[0]);
    }
    println!();
    println!("alerts in outbox: {}", sqlcm.outbox().len());
    let lat = sqlcm.lat("Duration_LAT").unwrap();
    println!(
        "Duration_LAT tracks {} distinct code-path templates",
        lat.row_count()
    );
    assert!(
        !report.is_empty(),
        "the blocked EXEC invocations must register as outliers"
    );
    Ok(())
}
