//! Example 5 of the paper: resource governing.
//!
//! "(a) Stopping a runaway query (i.e., a query that has exceeded a certain
//! budget on system resources)." — a `Timer` rule that iterates over all live
//! `Query` objects (§5.2's iteration semantics) and `Cancel()`s any whose
//! running time exceeds its budget. The cancel "only sends the cancel signal to
//! the thread(s) currently executing the query" (§5); the executor notices at
//! its next cancellation checkpoint.
//!
//! A server-side action without DBA intervention — the capability the paper
//! highlights as unique to being *inside* the server.
//!
//! ```sh
//! cargo run --release --example resource_governor
//! ```

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::tpch;
use std::time::Duration;

fn main() -> Result<()> {
    let engine = Engine::in_memory();
    println!("loading data …");
    tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 30_000,
            parts: 1_000,
            customers: 500,
            seed: 3,
        },
    )?;
    let sqlcm = Sqlcm::attach(&engine);

    // The governor: every 50 ms, cancel queries running longer than 300 ms.
    sqlcm.add_rule(
        Rule::new("runaway_governor")
            .on(RuleEvent::TimerAlarm("governor".into()))
            .when("Query.Duration > 0.3")
            .then(Action::cancel("Query"))
            .then(Action::send_mail(
                "dba@example.org",
                "cancelled runaway query {Query.ID} ({Query.User}): {Query.Query_Text}",
            )),
    )?;
    sqlcm.set_timer("governor", 50_000, -1);
    sqlcm.start_timer_thread(Duration::from_millis(10));

    // A well-behaved query: finishes untouched.
    let t0 = std::time::Instant::now();
    let quick = engine.query("SELECT COUNT(*) FROM orders")?;
    println!(
        "well-behaved query finished in {:?}: {} orders",
        t0.elapsed(),
        quick[0][0]
    );

    // The runaway: a cross-join-ish nested-loop monster that would take ages.
    let mut rogue = engine.connect("intern", "adhoc");
    let t0 = std::time::Instant::now();
    let result = rogue
        .execute("SELECT COUNT(*) FROM lineitem a JOIN lineitem b ON a.l_quantity < b.l_quantity");
    let elapsed = t0.elapsed();
    match result {
        Err(Error::Cancelled) => {
            println!("runaway query cancelled by the governor after {elapsed:?}")
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(30),
        "governor must step in long before the join finishes"
    );
    println!("governor notifications: {}", sqlcm.outbox().len());
    for (_, body) in sqlcm.outbox().messages() {
        println!("  {body}");
    }

    // Normal service continues afterwards.
    let after = engine.query("SELECT COUNT(*) FROM part")?;
    println!("engine healthy after cancellation: {} parts", after[0][0]);
    Ok(())
}
