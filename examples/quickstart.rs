//! Quickstart: attach SQLCM to the host engine, define one LAT and one rule,
//! run a small workload, and inspect the aggregated monitoring data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sqlcm_repro::prelude::*;

fn main() -> Result<()> {
    // 1. A host engine with a table.
    let engine = Engine::in_memory();
    engine
        .execute_batch("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT);")?;

    // 2. Attach SQLCM — from here on, probes stream into the monitor.
    let sqlcm = Sqlcm::attach(&engine);

    // 3. A LAT: per query template, how often it ran and its average duration.
    sqlcm.define_lat(
        LatSpec::new("Templates")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration")
            .aggregate(LatAggFunc::Last, "Query.Query_Text", "Example_Text")
            .order_by("N", true)
            .max_rows(50),
    )?;

    // 4. An ECA rule: on every commit, fold the query into the LAT.
    sqlcm.add_rule(
        Rule::new("track_templates")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Templates")),
    )?;

    // 5. A second rule: alert (to the recording outbox) when a query is slow.
    sqlcm.add_rule(
        Rule::new("slow_query_alert")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 0.5") // seconds
            .then(Action::send_mail(
                "dba@example.org",
                "slow query {Query.ID}: {Query.Query_Text} took {Query.Duration}s",
            )),
    )?;

    // 6. Run a workload: different constants, same templates.
    let mut session = engine.connect("alice", "quickstart");
    for i in 0..100 {
        session.execute_params(
            "INSERT INTO accounts VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::text(format!("owner-{i}")),
                Value::Float(100.0 + i as f64),
            ],
        )?;
    }
    for i in 0..200 {
        session.execute_params(
            "SELECT balance FROM accounts WHERE id = ?",
            &[Value::Int(i % 100)],
        )?;
    }
    session.execute("SELECT COUNT(*) AS n, AVG(balance) FROM accounts")?;

    // 7. Inspect what the monitor aggregated.
    let lat = sqlcm.lat("Templates").expect("defined above");
    println!("=== Templates LAT ({} rows) ===", lat.row_count());
    println!(
        "{:>6} {:>10} {:>14}  Example_Text",
        "N", "Sig", "Avg_Duration"
    );
    for row in lat.rows_ordered() {
        println!(
            "{:>6} {:>10} {:>12}s  {}",
            row[1],
            format!("{:x}", row[0].as_i64().unwrap_or(0)),
            format!("{:.6}", row[2].as_f64().unwrap_or(0.0)),
            row[3]
        );
    }
    println!();
    println!(
        "monitor stats: {:?}; alerts sent: {}",
        sqlcm.stats(),
        sqlcm.outbox().len()
    );
    Ok(())
}
