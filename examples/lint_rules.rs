//! Standalone lint front end for the static rule analyzer.
//!
//! Lints a ruleset *offline* — no engine, no event stream — exactly as
//! `Sqlcm::add_rule` / `define_lat` would at registration time, and prints
//! every diagnostic with its stable code.
//!
//! ```text
//! cargo run --example lint_rules          # the paper's example ruleset: clean
//! cargo run --example lint_rules -- --bad # adds one broken rule per code
//! ```
//!
//! Exits non-zero when any error-severity diagnostic is reported, so the
//! command slots into CI for rule catalogs kept under version control.

use sqlcm_core::analysis::{lat_ir, rule_ir};
use sqlcm_core::{Action, Analyzer, Diagnostic, LatAggFunc, LatSpec, Rule, RuleEvent, Severity};

/// The paper's §3 idioms: outlier detection (Example 1), top-k with periodic
/// persist (Example 3), and an eviction spill rule (§4.3).
fn good_ruleset() -> (Vec<LatSpec>, Vec<Rule>) {
    let lats = vec![
        LatSpec::new("Duration_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration"),
        LatSpec::new("TopK")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Max, "Query.Duration", "D")
            .order_by("D", true)
            .max_rows(10),
    ];
    let rules = vec![
        Rule::new("track")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Duration_LAT")),
        Rule::new("report_outlier")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 5 * Duration_LAT.Avg_Duration AND Duration_LAT.N >= 30")
            .then(Action::send_mail("dba", "outlier: $Query.Query_Text")),
        Rule::new("track_topk")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("TopK")),
        Rule::new("persist_topk")
            .on(RuleEvent::TimerAlarm("hourly".into()))
            .then(Action::persist_lat("topk_history", "TopK")),
    ];
    (lats, rules)
}

/// One deliberately broken rule (or LAT) per diagnostic code.
fn bad_ruleset() -> (Vec<LatSpec>, Vec<Rule>) {
    let (mut lats, mut rules) = good_ruleset();
    // E001: LAT spec with a misspelled source attribute.
    lats.push(
        LatSpec::new("Broken_LAT")
            .group_by("Query.Logical_Signatur", "Sig")
            .aggregate(LatAggFunc::Count, "", "N"),
    );
    rules.extend([
        // E001: probing a LAT that was never defined.
        Rule::new("probe_missing")
            .on(RuleEvent::QueryCommit)
            .when("Nope_LAT.N > 1"),
        // E002: COUNT column compared with a string.
        Rule::new("count_vs_text")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.N = 'many'"),
        // E003: Query-keyed LAT probed from a transaction event that never
        // has a Query in scope.
        Rule::new("unjoinable")
            .on(RuleEvent::TxnCommit)
            .when("Duration_LAT.Avg_Duration > 5"),
        // E004: feeding a bounded LAT from its own eviction event.
        Rule::new("refill")
            .on(RuleEvent::LatEviction("TopK".into()))
            .then(Action::insert("TopK")),
        // W101: Session never in scope on QueryCommit — the rule is dead.
        Rule::new("dead")
            .on(RuleEvent::QueryCommit)
            .when("Session.Success = FALSE")
            .then(Action::send_mail("dba", "x")),
        // W102: exact duplicate of `track`.
        Rule::new("track_again")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Duration_LAT")),
        // W201: persist + mail + external command on every query commit.
        Rule::new("heavy")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.N > 100")
            .then(Action::persist_lat("history", "Duration_LAT"))
            .then(Action::send_mail("dba", "x"))
            .then(Action::run_external("archive $Query.ID")),
    ]);
    (lats, rules)
}

fn print_diag(d: &Diagnostic) {
    let sev = match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    println!("{sev}[{}] {} — {}", d.code, d.rule, d.message);
    if let Some(span) = &d.span {
        println!("    at: {span}");
    }
    if let Some(help) = &d.help {
        println!("    help: {help}");
    }
}

fn main() {
    let mut bad = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bad" => bad = true,
            other => {
                eprintln!("unknown argument `{other}` (usage: lint_rules [--bad])");
                std::process::exit(2);
            }
        }
    }
    let (lats, rules) = if bad { bad_ruleset() } else { good_ruleset() };

    let mut analyzer = Analyzer::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for spec in &lats {
        diags.extend(analyzer.check_lat(&lat_ir(spec)));
    }
    for rule in &rules {
        diags.extend(analyzer.check_rule(&rule_ir(rule)));
    }

    println!(
        "linted {} LAT spec(s), {} rule(s): {} diagnostic(s)\n",
        lats.len(),
        rules.len(),
        diags.len()
    );
    for d in &diags {
        print_diag(d);
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    println!("\n{errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        std::process::exit(1);
    }
}
