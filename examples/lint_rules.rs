//! Standalone lint front end for the static rule analyzer.
//!
//! Lints a ruleset *offline* — no engine, no event stream — exactly as
//! `Sqlcm::add_rule` / `define_lat` would at registration time, and prints
//! every diagnostic with its stable code.
//!
//! ```text
//! cargo run --example lint_rules                  # the paper's example ruleset: clean
//! cargo run --example lint_rules -- --bad         # adds broken rules, ≥1 per code
//! cargo run --example lint_rules -- --workloads   # lint the shipped workload catalogs
//! cargo run --example lint_rules -- --workloads --deny-warnings   # CI mode
//! ```
//!
//! Exits non-zero when any error-severity diagnostic is reported — or, with
//! `--deny-warnings`, when any diagnostic at all is reported — so the command
//! slots into CI for rule catalogs kept under version control.

use sqlcm_core::analysis::{lat_ir, rule_indexability, rule_ir, Indexability};
use sqlcm_core::{Action, Analyzer, Diagnostic, LatAggFunc, LatSpec, Rule, RuleEvent, Severity};
use sqlcm_repro::workloads::rules::catalogs;

/// Cascade threshold used in `--bad` mode. The default (64) is sized for real
/// deployments; the demo lowers it so a 13-evaluation cascade is enough to
/// show W302 without drowning the output in filler rules.
const DEMO_CASCADE_THRESHOLD: usize = 12;

/// The paper's §3 idioms: outlier detection (Example 1), top-k with periodic
/// persist (Example 3), and an eviction spill rule (§4.3).
fn good_ruleset() -> (Vec<LatSpec>, Vec<Rule>) {
    let lats = vec![
        LatSpec::new("Duration_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration"),
        LatSpec::new("TopK")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Max, "Query.Duration", "D")
            .order_by("D", true)
            .max_rows(10),
    ];
    let rules = vec![
        Rule::new("track")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Duration_LAT")),
        Rule::new("report_outlier")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 5 * Duration_LAT.Avg_Duration AND Duration_LAT.N >= 30")
            .then(Action::send_mail("dba", "outlier: $Query.Query_Text")),
        Rule::new("track_topk")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("TopK")),
        Rule::new("persist_topk")
            .on(RuleEvent::TimerAlarm("hourly".into()))
            .then(Action::persist_lat("topk_history", "TopK")),
    ];
    (lats, rules)
}

/// At least one deliberately broken rule (or LAT) per diagnostic code.
fn bad_ruleset() -> (Vec<LatSpec>, Vec<Rule>) {
    let (mut lats, mut rules) = good_ruleset();
    // E001: LAT spec with a misspelled source attribute.
    lats.push(
        LatSpec::new("Broken_LAT")
            .group_by("Query.Logical_Signatur", "Sig")
            .aggregate(LatAggFunc::Count, "", "N"),
    );
    // E005: shard count outside the supported range.
    lats.push(
        LatSpec::new("Oversharded_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .shards(0),
    );
    // W202: more shards than the LAT can ever hold rows.
    lats.push(
        LatSpec::new("Tiny_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Max, "Query.Duration", "D")
            .order_by("D", true)
            .max_rows(4)
            .shards(16),
    );
    // W203: defined and read below, but never fed by any Insert.
    lats.push(
        LatSpec::new("Idle_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N"),
    );
    // W302: a bounded LAT whose eviction fans out into many spill rules.
    lats.push(
        LatSpec::new("Spill_LAT")
            .group_by("Transaction.ID", "Txn")
            .aggregate(LatAggFunc::Count, "", "N")
            .max_rows(5),
    );
    rules.extend([
        // E001: probing a LAT that was never defined.
        Rule::new("probe_missing")
            .on(RuleEvent::QueryCommit)
            .when("Nope_LAT.N > 1"),
        // E002: COUNT column compared with a string.
        Rule::new("count_vs_text")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.N = 'many'"),
        // E003: Query-keyed LAT probed from a transaction event that never
        // has a Query in scope.
        Rule::new("unjoinable")
            .on(RuleEvent::TxnCommit)
            .when("Duration_LAT.Avg_Duration > 5"),
        // E004: feeding a bounded LAT from its own eviction event.
        Rule::new("refill")
            .on(RuleEvent::LatEviction("TopK".into()))
            .then(Action::insert("TopK")),
        // E006: COUNT columns are non-negative — provably unsatisfiable.
        Rule::new("never_fires")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.N < 0")
            .then(Action::send_mail("dba", "unreachable")),
        // W101: Session never in scope on QueryCommit — the rule is dead.
        Rule::new("dead")
            .on(RuleEvent::QueryCommit)
            .when("Session.Success = FALSE")
            .then(Action::send_mail("dba", "x")),
        // W102: exact duplicate of `track`.
        Rule::new("track_again")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Duration_LAT")),
        // W201: persist + mail + external command on every query commit.
        Rule::new("heavy")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.N > 100")
            .then(Action::persist_lat("history", "Duration_LAT"))
            .then(Action::send_mail("dba", "x"))
            .then(Action::run_external("archive $Query.ID")),
        // W103: COUNT is always >= 0 — the condition is a tautology.
        Rule::new("always_fires")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.N >= 0")
            .then(Action::send_mail("dba", "every single commit")),
        // W104: the average can be zero (or still NULL) — possible div by 0.
        Rule::new("ratio_probe")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration / Duration_LAT.Avg_Duration > 5")
            .then(Action::send_mail("dba", "slow ratio")),
        // W203: Idle_LAT has no feeder anywhere in the ruleset.
        Rule::new("readonly_probe")
            .on(RuleEvent::QueryCommit)
            .when("Idle_LAT.N > 10")
            .then(Action::send_mail("dba", "idle lat moved?")),
        // W205: pattern-only condition on a hot event — the guard index has
        // no atom to probe, so every query commit evaluates the LIKE.
        Rule::new("ddl_watch")
            .on(RuleEvent::QueryCommit)
            .when("Query.Query_Text LIKE '%DROP TABLE%'")
            .then(Action::send_mail("dba", "DDL spotted")),
        // W301: `order_writer` mutates what the adjacent earlier rule reads —
        // swapping the pair changes what `order_reader` observes.
        Rule::new("order_reader")
            .on(RuleEvent::QueryCommit)
            .when("Duration_LAT.Avg_Duration > 2")
            .then(Action::send_mail("dba", "avg drifted")),
        Rule::new("order_writer")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 30")
            .then(Action::insert("Duration_LAT")),
    ]);
    // W302: each eviction from Spill_LAT triggers 12 spill handlers; the
    // feeding rule amplifies one commit past the (demo) cascade threshold.
    for i in 0..DEMO_CASCADE_THRESHOLD {
        rules.push(
            Rule::new(format!("spill{i}"))
                .on(RuleEvent::LatEviction("Spill_LAT".into()))
                .then(Action::persist_lat(
                    &format!("spill_shard_{i}"),
                    "Spill_LAT",
                )),
        );
    }
    rules.push(
        Rule::new("cascade_src")
            .on(RuleEvent::TxnCommit)
            .then(Action::insert("Spill_LAT")),
    );
    (lats, rules)
}

fn print_diag(d: &Diagnostic) {
    let sev = match d.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
    };
    println!("{sev}[{}] {} — {}", d.code, d.rule, d.message);
    if let Some(span) = &d.span {
        println!("    at: {span}");
    }
    if let Some(help) = &d.help {
        println!("    help: {help}");
    }
}

/// Lint one (LAT, rule) set with a fresh analyzer; returns its diagnostics.
/// Also prints the per-rule guard-index verdict — whether dispatch can prune
/// the rule without evaluating it, mirroring `telemetry.matching` at runtime.
fn lint(lats: &[LatSpec], rules: &[Rule], cascade_threshold: Option<usize>) -> Vec<Diagnostic> {
    let mut analyzer = Analyzer::new();
    if let Some(t) = cascade_threshold {
        analyzer.cascade_threshold = t;
    }
    let mut diags: Vec<Diagnostic> = Vec::new();
    for spec in lats {
        diags.extend(analyzer.check_lat(&lat_ir(spec)));
    }
    for rule in rules {
        diags.extend(analyzer.check_rule(&rule_ir(rule)));
    }
    println!("guard indexability (can dispatch prune the rule without evaluating it?):");
    for rule in rules {
        match rule_indexability(analyzer.universe(), &rule_ir(rule)) {
            Indexability::Indexable(guard) => {
                println!("  {:<16} indexable: {guard}", rule.name);
            }
            Indexability::Residual(r) => {
                println!("  {:<16} residual:  {}", rule.name, r.describe());
            }
        }
    }
    println!();
    diags
}

fn main() {
    let mut bad = false;
    let mut workloads = false;
    let mut deny_warnings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bad" => bad = true,
            "--workloads" => workloads = true,
            "--deny-warnings" => deny_warnings = true,
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (usage: lint_rules [--bad] [--workloads] [--deny-warnings])"
                );
                std::process::exit(2);
            }
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    if workloads {
        // Each workload catalog is an independent ruleset: fresh analyzer each.
        for catalog in catalogs() {
            println!(
                "catalog `{}` ({}): {} LAT(s), {} rule(s)",
                catalog.name,
                catalog.scenario,
                catalog.lats.len(),
                catalog.rules.len(),
            );
            let diags = lint(&catalog.lats, &catalog.rules, None);
            println!("{} diagnostic(s)", diags.len());
            for d in &diags {
                print_diag(d);
            }
            errors += diags.iter().filter(|d| d.is_error()).count();
            warnings += diags.iter().filter(|d| !d.is_error()).count();
        }
    } else {
        let (lats, rules) = if bad { bad_ruleset() } else { good_ruleset() };
        let threshold = bad.then_some(DEMO_CASCADE_THRESHOLD);
        println!(
            "linting {} LAT spec(s), {} rule(s)\n",
            lats.len(),
            rules.len()
        );
        let diags = lint(&lats, &rules, threshold);
        println!("{} diagnostic(s)\n", diags.len());
        for d in &diags {
            print_diag(d);
        }
        errors = diags.iter().filter(|d| d.is_error()).count();
        warnings = diags.iter().filter(|d| !d.is_error()).count();
    }

    println!("\n{errors} error(s), {warnings} warning(s)");
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
