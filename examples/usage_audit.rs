//! Example 4 of the paper: auditing / summarizing system usage.
//!
//! Three auditing tasks in one monitor:
//!
//! * (b) "detecting potentially unauthorized access attempts, e.g., number of
//!   login failures for each user" — a LAT over `Session` login events;
//! * (c) "summarizing query/update 'templates' for a particular application,
//!   their associated frequencies and average/max duration for each template …
//!   over a 24 hour period" — a template LAT with aging aggregates, persisted
//!   periodically by a `Timer` rule ("collect summaries synchronously … and in
//!   addition have rules that persist these asynchronously, e.g. every 24
//!   hours"). The 24-hour period is scaled to 200 ms so the example finishes.
//!
//! ```sh
//! cargo run --release --example usage_audit
//! ```

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{skewed, tpch};

fn main() -> Result<()> {
    let engine = Engine::in_memory();
    let db = tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 1_000,
            parts: 100,
            customers: 50,
            seed: 5,
        },
    )?;
    engine.execute_batch(
        "CREATE TABLE template_report (sig INT, n INT, avg_d FLOAT, max_d FLOAT, qtext TEXT, at TIMESTAMP);\
         CREATE TABLE login_failures (who TEXT, app TEXT);",
    )?;
    let sqlcm = Sqlcm::attach(&engine);

    // (c) Template summary: frequency, average and max duration per template.
    sqlcm.define_lat(
        LatSpec::new("Templates")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_D")
            .aggregate(LatAggFunc::Max, "Query.Duration", "Max_D")
            .aggregate(LatAggFunc::Last, "Query.Query_Text", "Example")
            .order_by("N", true)
            .max_rows(200),
    )?;
    sqlcm.add_rule(
        Rule::new("summarize")
            .on(RuleEvent::QueryCommit)
            .when("Query.Application = 'workload'")
            .then(Action::insert("Templates")),
    )?;

    // Periodic persist-and-reset via a Timer rule (the "every 24 hours" shape;
    // scaled down to 200 ms).
    sqlcm.add_rule(
        Rule::new("nightly_report")
            .on(RuleEvent::TimerAlarm("nightly".into()))
            .then(Action::persist_lat("template_report", "Templates"))
            .then(Action::reset("Templates")),
    )?;
    sqlcm.set_timer("nightly", 200_000, -1); // 200 ms, forever
    sqlcm.start_timer_thread(std::time::Duration::from_millis(20));

    // (b) Login-failure auditing.
    sqlcm.define_lat(
        LatSpec::new("FailuresPerUser")
            .group_by("Session.User", "Who")
            .aggregate(LatAggFunc::Count, "", "Failures")
            .order_by("Failures", true)
            .max_rows(100),
    )?;
    sqlcm.add_rule(
        Rule::new("audit_failures")
            .on(RuleEvent::Login)
            .when("Session.Success = FALSE")
            .then(Action::insert("FailuresPerUser"))
            .then(Action::persist_object(
                "login_failures",
                "Session",
                &["User", "Application"],
            )),
    )?;

    // Workload across two "days" (timer periods).
    let queries = skewed::generate(&db, 2_000, 99);
    let mid = queries.len() / 2;
    sqlcm_repro::workloads::run_queries(&engine, &queries[..mid])?;
    std::thread::sleep(std::time::Duration::from_millis(250));
    sqlcm_repro::workloads::run_queries(&engine, &queries[mid..])?;
    std::thread::sleep(std::time::Duration::from_millis(250));

    // Some login failures.
    for _ in 0..3 {
        engine.failed_login("mallory", "sqlmap");
    }
    engine.failed_login("eve", "curl");

    let reports = engine.query("SELECT COUNT(*) AS rows_persisted FROM template_report")?;
    println!(
        "template_report rows persisted by the timer rule: {}",
        reports[0][0]
    );
    let per_period =
        engine.query("SELECT at, COUNT(*) FROM template_report GROUP BY at ORDER BY at")?;
    println!("reporting periods: {}", per_period.len());
    for p in &per_period {
        println!("  period at t={} — {} templates", p[0], p[1]);
    }

    println!();
    println!("=== login failures per user ===");
    for row in sqlcm.lat("FailuresPerUser").unwrap().rows_ordered() {
        println!("  {:>3} failures  {}", row[1], row[0]);
    }
    let failures = engine.query("SELECT COUNT(*) FROM login_failures")?;
    assert_eq!(failures[0][0], Value::Int(4));
    assert!(per_period.len() >= 2, "at least two reporting periods");
    Ok(())
}
