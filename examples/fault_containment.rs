//! Fault containment tour: circuit breakers, async action retry, the
//! overload ladder, and the loss ledger — all driven by seeded fault
//! injection and an event storm, no real outage required.
//!
//! The demo stages three incidents against one monitored instance:
//!
//! 1. **Dead mail sink.** Async external actions queue, retry with
//!    exponential backoff, then exhaust into the loss ledger; the rule's
//!    circuit breaker trips and quarantines it out of the dispatch plan.
//! 2. **Recovery.** The fault clears; probation (half-open) re-admits the
//!    rule, the trial succeeds, and the breaker closes.
//! 3. **Overload.** A burst storm pushes the event rate past the ladder
//!    thresholds; the monitor sheds tracing and low-priority work, then
//!    recovers to full service when the storm passes.
//!
//! ```sh
//! cargo run --release --example fault_containment
//! ```

use sqlcm_repro::monitor::{
    BreakerConfig, BreakerState, FaultPlan, FaultRate, OverloadPolicy, OverloadStage, RetryPolicy,
};
use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::storm::{self, StormConfig, StormShape};

fn main() -> Result<()> {
    let engine = Engine::in_memory();
    let sqlcm = Sqlcm::attach(&engine);

    // Aggressive settings so the incidents play out in seconds.
    sqlcm.set_breaker_config(BreakerConfig {
        error_threshold: 4,
        min_outcomes: 8,
        cooldown_micros: 200_000,
        ..Default::default()
    });
    sqlcm.set_async_actions(true);
    sqlcm.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        base_backoff_micros: 1_000,
        max_backoff_micros: 50_000,
        jitter: 0.2,
    });
    sqlcm.define_lat(
        LatSpec::new("Sig_LAT")
            .group_by("Query.Logical_Signature", "Sig")
            .aggregate(LatAggFunc::Count, "", "N")
            .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_D"),
    )?;
    sqlcm.add_rule(
        Rule::new("feed")
            .on(RuleEvent::QueryCommit)
            .then(Action::insert("Sig_LAT")),
    )?;
    sqlcm.add_rule(
        Rule::new("mail_slow")
            .on(RuleEvent::QueryCommit)
            .when("Query.Duration > 0.05")
            .then(Action::send_mail(
                "dba@example.org",
                "slow: {Query.Query_Text}",
            )),
    )?;

    // ---- Incident 1: the mail sink dies. --------------------------------
    println!("== incident 1: dead mail sink ==");
    sqlcm.inject_faults(Some(FaultPlan::seeded(42).mail(FaultRate::Always)));
    let evs = storm::events(StormConfig::new(StormShape::Spike, 2_000, 42));
    for ev in &evs {
        sqlcm.inject_event(ev);
        sqlcm.pump_deferred_actions();
        if sqlcm.breaker_state("mail_slow") == Some(BreakerState::Open) {
            break;
        }
    }
    // Let the queued retries play out against the still-dead sink.
    while sqlcm.deferred_queue_depth() > 0 {
        sqlcm.pump_deferred_actions();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let t = sqlcm.telemetry().containment;
    println!(
        "  breaker:     {:?} (trips: {})",
        sqlcm.breaker_state("mail_slow"),
        t.breaker_trips
    );
    println!("  quarantined: {:?}", t.quarantined);
    println!(
        "  deferred:    enqueued={} executed={} failed_attempts={} retries={}",
        t.deferred.enqueued, t.deferred.executed, t.deferred.failed_attempts, t.deferred.retries
    );
    for loss in sqlcm.loss_ledger() {
        println!(
            "  loss ledger: rule={} reason={} count={}",
            loss.rule, loss.reason, loss.count
        );
    }
    assert_eq!(sqlcm.breaker_state("mail_slow"), Some(BreakerState::Open));
    assert!(sqlcm.total_action_losses() > 0);

    // ---- Incident 2: the sink recovers. ---------------------------------
    println!("\n== incident 2: recovery through probation ==");
    sqlcm.inject_faults(None);
    std::thread::sleep(std::time::Duration::from_millis(250)); // cooldown
    let reopened = sqlcm.poll_breakers();
    println!(
        "  re-admitted {reopened} rule(s) on probation: {:?}",
        sqlcm.breaker_state("mail_slow")
    );
    // A slow query arrives: the half-open trial fires, succeeds, closes.
    for ev in storm::events(StormConfig::new(StormShape::Spike, 32, 7)) {
        sqlcm.inject_event(&ev);
    }
    sqlcm.pump_deferred_actions();
    println!(
        "  after trial: {:?} (closes: {})",
        sqlcm.breaker_state("mail_slow"),
        sqlcm.telemetry().containment.breaker_closes
    );
    assert_eq!(sqlcm.breaker_state("mail_slow"), Some(BreakerState::Closed));

    // ---- Incident 3: overload. ------------------------------------------
    println!("\n== incident 3: overload ladder ==");
    sqlcm.set_overload_policy(Some(OverloadPolicy {
        stage1_events_per_sec: 5_000.0,
        stage2_events_per_sec: 20_000.0,
        stage3_events_per_sec: 100_000.0,
        quiet_checkpoints: 1,
        ..Default::default()
    }));
    // A tight-loop burst drives the measured rate far past the thresholds;
    // the ladder checkpoints every 1024 events and escalates one stage each.
    let burst = storm::events(StormConfig::new(StormShape::Burst, 40_000, 9));
    for ev in &burst {
        sqlcm.inject_event(ev);
    }
    let t = sqlcm.telemetry().containment;
    let peak = t.overload_stage;
    println!("  stage now:   {:?}", sqlcm.overload_stage());
    println!(
        "  transitions: {} shed_traces: {} shed_evaluations: {}",
        t.overload_transitions, t.shed_traces, t.shed_evaluations
    );
    assert!(t.overload_transitions > 0, "storm never moved the ladder");
    assert_ne!(sqlcm.overload_stage(), OverloadStage::Full);

    // Quiet traffic (~1.7k events/s, well below every exit threshold)
    // de-escalates one stage per checkpoint back toward full service.
    for _ in 0..8 {
        std::thread::sleep(std::time::Duration::from_millis(300));
        for ev in storm::events(StormConfig::new(StormShape::Uniform, 512, 1)) {
            sqlcm.inject_event(&ev);
        }
    }
    let after = sqlcm.telemetry().containment.overload_stage;
    println!("  after quiet: {:?}", sqlcm.overload_stage());
    assert!(after < peak, "quiet traffic never de-escalated the ladder");

    println!("\n== final telemetry (containment slice) ==");
    let c = sqlcm.telemetry().containment;
    println!(
        "breakers=on trips={} reopens={} closes={} transitions={} stage={}",
        c.breaker_trips,
        c.breaker_reopens,
        c.breaker_closes,
        c.overload_transitions,
        c.overload_stage
    );
    let d = &c.deferred;
    println!(
        "deferred: enqueued={} executed={} retries={} dropped_overflow={} dropped_exhausted={}",
        d.enqueued, d.executed, d.retries, d.dropped_overflow, d.dropped_exhausted
    );
    // Conservation: every enqueued action is executed, dropped, or queued.
    assert_eq!(
        d.enqueued,
        d.executed + d.dropped_overflow + d.dropped_exhausted + d.queue_depth
    );
    Ok(())
}
