//! Integration tests: multi-session behaviour — blocking, deadlocks,
//! cancellation, monitor consistency under contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sqlcm_repro::engine::engine::EngineConfig;
use sqlcm_repro::prelude::*;

fn engine() -> Engine {
    let e = Engine::new(EngineConfig {
        lock_wait_timeout: Duration::from_secs(5),
        ..Default::default()
    })
    .unwrap();
    e.execute_batch("CREATE TABLE acc (id INT PRIMARY KEY, bal INT);")
        .unwrap();
    let mut s = e.connect("setup", "t");
    for i in 1..=10 {
        s.execute_params("INSERT INTO acc VALUES (?, 100)", &[Value::Int(i)])
            .unwrap();
    }
    e
}

#[test]
fn writer_blocks_reader_then_unblocks() {
    let e = engine();
    let mut w = e.connect("writer", "t");
    w.execute("BEGIN").unwrap();
    w.execute("UPDATE acc SET bal = 0 WHERE id = 1").unwrap();

    let mut r = e.connect("reader", "t");
    let t = std::thread::spawn(move || {
        let rows = r.execute("SELECT bal FROM acc WHERE id = 1").unwrap();
        rows.rows[0][0].clone()
    });
    std::thread::sleep(Duration::from_millis(40));
    assert_eq!(e.blocked_pairs().len(), 1, "reader visible as blocked");
    w.execute("COMMIT").unwrap();
    assert_eq!(
        t.join().unwrap(),
        Value::Int(0),
        "reader sees committed value"
    );
    assert!(e.blocked_pairs().is_empty());
}

#[test]
fn deadlock_victim_can_retry() {
    let e = engine();
    let mut s1 = e.connect("a", "t");
    let mut s2 = e.connect("b", "t");
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("UPDATE acc SET bal = 1 WHERE id = 1").unwrap();
    s2.execute("UPDATE acc SET bal = 2 WHERE id = 2").unwrap();

    // s2 waits on id=1; then s1 requests id=2 → deadlock, s1 is the victim.
    let t = std::thread::spawn(move || {
        let r = s2.execute("UPDATE acc SET bal = 2 WHERE id = 1");
        (r.is_ok(), s2)
    });
    std::thread::sleep(Duration::from_millis(50));
    let err = s1
        .execute("UPDATE acc SET bal = 1 WHERE id = 2")
        .unwrap_err();
    assert!(matches!(err, Error::Deadlock { .. }), "{err}");
    assert!(!s1.in_transaction(), "victim txn rolled back");
    let (ok, mut s2) = t.join().unwrap();
    assert!(ok, "survivor proceeds after victim rollback");
    s2.execute("COMMIT").unwrap();
    // Victim's first update was undone.
    assert_eq!(
        e.query("SELECT bal FROM acc WHERE id = 1").unwrap()[0][0],
        Value::Int(2)
    );
}

#[test]
fn lock_timeout_reports_resource() {
    let e = Engine::new(EngineConfig {
        lock_wait_timeout: Duration::from_millis(80),
        ..Default::default()
    })
    .unwrap();
    e.execute_batch("CREATE TABLE t (id INT PRIMARY KEY, v INT);")
        .unwrap();
    e.query("SELECT 1").unwrap();
    let mut a = e.connect("a", "t");
    a.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    a.execute("BEGIN").unwrap();
    a.execute("UPDATE t SET v = 9 WHERE id = 1").unwrap();
    let mut b = e.connect("b", "t");
    let err = b.execute("SELECT v FROM t WHERE id = 1").unwrap_err();
    match err {
        Error::LockTimeout {
            resource,
            waited_micros,
        } => {
            assert!(resource.contains("row"), "{resource}");
            assert!(waited_micros >= 60_000);
        }
        other => panic!("expected timeout, got {other}"),
    }
}

#[test]
fn monitor_counts_are_exact_under_concurrency() {
    let e = engine();
    let sqlcm = Sqlcm::attach(&e);
    sqlcm
        .define_lat(
            LatSpec::new("PerUser")
                .group_by("Query.User", "U")
                .aggregate(LatAggFunc::Count, "", "N"),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("count")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("PerUser")),
        )
        .unwrap();

    let per_thread = 300u64;
    let threads = 4;
    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let e = &e;
            let committed = committed.clone();
            scope.spawn(move || {
                let mut s = e.connect(&format!("user{t}"), "t");
                for i in 0..per_thread {
                    let id = 1 + ((t as u64 * per_thread + i) % 10) as i64;
                    if s.execute_params(
                        "UPDATE acc SET bal = bal + 1 WHERE id = ?",
                        &[Value::Int(id)],
                    )
                    .is_ok()
                    {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let lat = sqlcm.lat("PerUser").unwrap();
    let counted: i64 = lat.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(
        counted as u64,
        committed.load(Ordering::Relaxed),
        "every committed statement counted exactly once"
    );
    // And the data agrees: sum of balances grew by exactly the commit count.
    let total = e.query("SELECT SUM(bal) FROM acc").unwrap()[0][0]
        .as_f64()
        .unwrap();
    assert_eq!(
        total as u64,
        1000 + committed.load(Ordering::Relaxed),
        "no lost updates in the data either"
    );
}

/// Stress: 8 threads × 10k events over overlapping keys into a bounded,
/// sharded LAT. COUNT is conserved — every delivered event is counted exactly
/// once, either in an evicted row snapshot or in a surviving row — the row
/// high-water mark never exceeds the size bound, and the insert counter
/// matches the events delivered.
#[test]
fn lat_stress_conserves_counts_under_8_thread_contention() {
    use sqlcm_repro::common::{QueryInfo, SystemClock};
    use sqlcm_repro::monitor::objects::query_object;

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    const MAX_ROWS: usize = 32;
    const GROUPS: u64 = 64; // overlapping keys: every thread hits every group

    let spec = LatSpec::new("Stress")
        .group_by("Query.Logical_Signature", "Sig")
        .aggregate(LatAggFunc::Count, "", "N")
        .order_by("N", false)
        .max_rows(MAX_ROWS);
    let lat = Arc::new(sqlcm_repro::monitor::Lat::new(spec, SystemClock::shared()).unwrap());

    let evicted_count: i64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let lat = Arc::clone(&lat);
                scope.spawn(move || {
                    let mut evicted = 0i64;
                    for i in 0..PER_THREAD {
                        let sig = (t * PER_THREAD + i).wrapping_mul(2654435761) % GROUPS;
                        let mut q = QueryInfo::synthetic(1, format!("q{sig}"));
                        q.logical_signature = Some(sig);
                        for row in lat.insert(&query_object(&q)).unwrap() {
                            evicted += row[1].as_i64().unwrap();
                        }
                    }
                    evicted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let surviving: i64 = lat.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
    let delivered = THREADS * PER_THREAD;
    assert_eq!(
        (evicted_count + surviving) as u64,
        delivered,
        "every event counted exactly once across evicted + surviving rows"
    );
    let stats = lat.stats();
    assert_eq!(stats.inserts, delivered, "insert counter exact");
    assert!(
        stats.row_high_water <= MAX_ROWS as u64,
        "high water {} exceeds bound {MAX_ROWS}",
        stats.row_high_water
    );
    assert!(lat.row_count() <= MAX_ROWS);
}

/// Stress: the telemetry snapshot's per-LAT insert counters sum exactly to
/// the events delivered — two QueryCommit rules each feed one LAT, so the sum
/// over LATs must be exactly twice the committed-statement count.
#[test]
fn telemetry_lat_insert_counts_sum_to_events_delivered() {
    let e = engine();
    let sqlcm = Sqlcm::attach(&e);
    for name in ["ByUser", "BySig"] {
        let (attr, alias) = match name {
            "ByUser" => ("Query.User", "U"),
            _ => ("Query.Logical_Signature", "Sig"),
        };
        sqlcm
            .define_lat(LatSpec::new(name).group_by(attr, alias).aggregate(
                LatAggFunc::Count,
                "",
                "N",
            ))
            .unwrap();
        sqlcm
            .add_rule(
                Rule::new(format!("feed_{name}"))
                    .on(RuleEvent::QueryCommit)
                    .then(Action::insert(name)),
            )
            .unwrap();
    }

    let per_thread = 200u64;
    let threads = 8;
    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let e = &e;
            let committed = committed.clone();
            scope.spawn(move || {
                let mut s = e.connect(&format!("user{t}"), "t");
                for i in 0..per_thread {
                    let id = 1 + ((t as u64 * per_thread + i) % 10) as i64;
                    if s.execute_params(
                        "UPDATE acc SET bal = bal + 1 WHERE id = ?",
                        &[Value::Int(id)],
                    )
                    .is_ok()
                    {
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let delivered = committed.load(Ordering::Relaxed);
    let snap = sqlcm.telemetry();
    let per_lat: Vec<(String, u64)> = snap
        .lats
        .iter()
        .map(|l| (l.name.clone(), l.inserts))
        .collect();
    for (name, inserts) in &per_lat {
        assert_eq!(
            *inserts, delivered,
            "LAT {name} insert count matches committed statements"
        );
    }
    let total: u64 = per_lat.iter().map(|(_, n)| n).sum();
    assert_eq!(
        total,
        2 * delivered,
        "per-LAT insert counts sum exactly to events delivered"
    );
}

#[test]
fn cancel_from_another_session() {
    let e = engine();
    // Grow the table so a self-join runs long enough to cancel.
    let mut s = e.connect("setup2", "t");
    s.execute("BEGIN").unwrap();
    for i in 11..=2000 {
        s.execute_params("INSERT INTO acc VALUES (?, 1)", &[Value::Int(i)])
            .unwrap();
    }
    s.execute("COMMIT").unwrap();

    let mut victim = e.connect("victim", "t");
    let handle = std::thread::spawn(move || {
        victim.execute("SELECT COUNT(*) FROM acc a JOIN acc b ON a.bal < b.bal")
    });
    // Find the running query via the snapshot API and cancel it.
    let mut cancelled = false;
    for _ in 0..500 {
        if let Some(q) = e
            .snapshot_active()
            .into_iter()
            .find(|q| &*q.user == "victim")
        {
            cancelled = e.cancel_query(q.id);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(cancelled, "query was found and signalled");
    let err = handle.join().unwrap().unwrap_err();
    assert_eq!(err, Error::Cancelled);
}
