//! Integration tests: the §6.2.2 baselines against ground truth.

use std::time::Duration;

use sqlcm_repro::baselines::{missed_count, top_k, QueryCost};
use sqlcm_repro::engine::engine::{EngineConfig, HistoryMode};
use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{mixed, run_queries, tpch};

fn history_engine() -> (Engine, sqlcm_repro::workloads::TpchDb) {
    let engine = Engine::new(EngineConfig {
        history: HistoryMode::Unbounded,
        ..Default::default()
    })
    .unwrap();
    let db = tpch::load(
        &engine,
        tpch::TpchConfig {
            orders: 400,
            parts: 60,
            customers: 30,
            seed: 21,
        },
    )
    .unwrap();
    (engine, db)
}

fn run_and_truth(engine: &Engine, w: &[mixed::WorkloadQuery]) -> Vec<QueryCost> {
    engine.history().unwrap().drain();
    run_queries(engine, w).unwrap();
    engine
        .history()
        .unwrap()
        .drain()
        .into_iter()
        .map(|q| QueryCost {
            query_id: q.id,
            text: q.text,
            duration_micros: q.duration_micros,
        })
        .collect()
}

#[test]
fn query_logging_is_lossless_and_matches_truth() {
    let (engine, db) = history_engine();
    let w = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 400,
            join_selects: 6,
            seed: 1,
        },
    );
    let log = QueryLogging::in_memory();
    log.attach(&engine);
    let truth = run_and_truth(&engine, &w);
    engine.detach_monitor("query_logging");
    assert_eq!(log.logged() as usize, w.len());
    let top_truth = top_k(&truth, 10);
    let top_log = log.top_k(10).unwrap();
    assert_eq!(missed_count(&top_truth, &top_log), 0, "logging is exact");
    // The top of the list must be the join queries.
    assert!(top_log[0].text.contains("JOIN"));
}

#[test]
fn pull_misses_what_completes_between_polls() {
    let (engine, db) = history_engine();
    let w = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 2_000,
            join_selects: 10,
            seed: 2,
        },
    );
    // Glacial polling: almost everything completes between polls.
    let monitor = PullMonitor::start(&engine, Duration::from_secs(30));
    let truth = run_and_truth(&engine, &w);
    let report = monitor.stop();
    let top_truth = top_k(&truth, 10);
    let missed = missed_count(&top_truth, &report.top_k(10));
    assert!(
        missed >= 5,
        "glacial PULL must miss most of the top-10, missed only {missed}"
    );
}

#[test]
fn pull_history_is_exact_at_any_rate() {
    let (engine, db) = history_engine();
    let w = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 500,
            join_selects: 5,
            seed: 3,
        },
    );
    engine.history().unwrap().drain(); // discard the data-load entries
    let monitor = PullHistory::start(&engine, Duration::from_millis(50));
    run_queries(&engine, &w).unwrap();
    let report = monitor.stop(&engine);
    assert_eq!(
        report.observed.len(),
        w.len(),
        "history drains must capture every query"
    );
    assert!(report.peak_history_bytes > 0);
    let top = report.top_k(10);
    assert!(top[0].text.contains("JOIN"));
}

#[test]
fn sqlcm_lat_matches_logging_answer() {
    // SQLCM's 10-row LAT and the lossless log must agree on the top-10 ids.
    let (engine, db) = history_engine();
    let w = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 300,
            join_selects: 8,
            seed: 4,
        },
    );
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("TopK")
                .group_by("Query.ID", "ID")
                .aggregate(LatAggFunc::Max, "Query.Duration", "D")
                .order_by("D", true)
                .max_rows(10),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("TopK")),
        )
        .unwrap();
    let truth = run_and_truth(&engine, &w);
    let top_truth = top_k(&truth, 10);
    let lat_ids: Vec<u64> = sqlcm
        .lat("TopK")
        .unwrap()
        .rows_ordered()
        .iter()
        .map(|r| r[0].as_i64().unwrap() as u64)
        .collect();
    let truth_ids: Vec<u64> = top_truth.iter().map(|t| t.query_id).collect();
    // Same membership; order may differ on duration ties.
    let mut a = lat_ids.clone();
    let mut b = truth_ids.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "SQLCM top-10 ≡ lossless truth");
}
