//! Integration tests: the five Section-3 monitoring scenarios, end to end
//! through the public API (engine + SQLCM attached as a monitor).

use sqlcm_repro::engine::engine::{EngineConfig as Cfg, HistoryMode};
use sqlcm_repro::monitor::objects;
use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{blocking, mixed, procs, run_queries, tpch};

fn small_db(engine: &Engine) -> sqlcm_repro::workloads::TpchDb {
    tpch::load(
        engine,
        tpch::TpchConfig {
            orders: 300,
            parts: 50,
            customers: 20,
            seed: 9,
        },
    )
    .unwrap()
}

#[test]
fn example1_outliers_against_aging_average() {
    let engine = Engine::in_memory();
    let _db = small_db(&engine);
    engine
        .execute_batch("CREATE TABLE outliers (qtext TEXT, duration FLOAT);")
        .unwrap();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("Duration_LAT")
                .group_by("Query.Logical_Signature", "Sig")
                .aggregate(LatAggFunc::Avg, "Query.Duration", "Avg_Duration")
                .aggregate(LatAggFunc::Count, "", "N"),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("report")
                .on(RuleEvent::QueryCommit)
                // Absolute floor keeps scheduler noise on µs-scale queries from
                // registering as outliers in the test.
                .when(
                    "Query.Duration > 5 * Duration_LAT.Avg_Duration \
                     AND Duration_LAT.N >= 5 AND Query.Duration > 0.05",
                )
                .then(Action::persist_object(
                    "outliers",
                    "Query",
                    &["Query_Text", "Duration"],
                )),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("Duration_LAT")),
        )
        .unwrap();

    // Uniform template traffic — no outliers.
    let mut s = engine.connect("app", "t");
    for i in 1..=50 {
        s.execute_params(
            "SELECT o_status FROM orders WHERE o_orderkey = ?",
            &[Value::Int(i)],
        )
        .unwrap();
    }
    assert_eq!(
        engine.query("SELECT COUNT(*) FROM outliers").unwrap()[0][0],
        Value::Int(0)
    );

    // A synthetic 100×-slower instance of the same template (driven through the
    // monitor's public dispatch path via a fabricated engine event is not
    // possible from outside; instead run a real query made slow by a lock).
    let mut blocker = engine.connect("batch", "t");
    blocker.execute("BEGIN").unwrap();
    blocker
        .execute("UPDATE orders SET o_totalprice = 0.0 WHERE o_orderkey = 7")
        .unwrap();
    let t = std::thread::spawn(move || {
        let r = s.execute_params(
            "SELECT o_status FROM orders WHERE o_orderkey = ?",
            &[Value::Int(7)],
        );
        r.map(|_| s)
    });
    std::thread::sleep(std::time::Duration::from_millis(120));
    blocker.execute("COMMIT").unwrap();
    t.join().unwrap().unwrap();

    let rows = engine.query("SELECT duration FROM outliers").unwrap();
    assert_eq!(rows.len(), 1, "the delayed instance is an outlier");
    assert!(rows[0][0].as_f64().unwrap() > 0.1);
}

#[test]
fn example2_blocking_delay_attribution() {
    let engine = Engine::in_memory();
    let _db = small_db(&engine);
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("Blockers")
                .group_by("Blocker.Query_Text", "Stmt")
                .aggregate(LatAggFunc::Sum, "Blocker.Wait_Time", "Total_Delay")
                .aggregate(LatAggFunc::Count, "", "Episodes")
                .order_by("Total_Delay", true)
                .max_rows(10),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::BlockReleased)
                .then(Action::insert("Blockers")),
        )
        .unwrap();
    let stats = blocking::run(
        &engine,
        blocking::BlockingConfig {
            writers: 2,
            readers: 4,
            iterations: 8,
            hold: std::time::Duration::from_millis(5),
            hot_rows: 1,
        },
    );
    assert_eq!(stats.errors, 0);
    let lat = sqlcm.lat("Blockers").unwrap();
    let rows = lat.rows_ordered();
    assert!(!rows.is_empty());
    // The UPDATE statement must be the top blocker, with real accumulated delay.
    assert!(rows[0][0].as_str().unwrap().starts_with("UPDATE orders"));
    assert!(rows[0][1].as_f64().unwrap() > 0.0);
    let episodes: i64 = rows.iter().map(|r| r[2].as_i64().unwrap()).sum();
    assert!(episodes > 0);
}

#[test]
fn example3_topk_matches_ground_truth() {
    // History gives the exact per-run truth; the LAT must agree with it.
    let engine = Engine::new(Cfg {
        history: HistoryMode::Unbounded,
        ..Default::default()
    })
    .unwrap();
    let db = small_db(&engine);
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.define_topk_duration_lat("TopK", 5).unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("TopK")),
        )
        .unwrap();
    engine.history().unwrap().drain();
    let w = mixed::generate(
        &db,
        mixed::MixedConfig {
            point_selects: 300,
            join_selects: 8,
            seed: 3,
        },
    );
    run_queries(&engine, &w).unwrap();

    // Truth: per-signature max duration, top 5.
    let all = engine.history().unwrap().drain();
    let mut per_sig: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for q in &all {
        let sig = q.logical_signature.unwrap();
        let d = q.duration_micros as f64 / 1e6;
        let e = per_sig.entry(sig).or_insert(0.0);
        if d > *e {
            *e = d;
        }
    }
    let mut truth: Vec<(u64, f64)> = per_sig.into_iter().collect();
    truth.sort_by(|a, b| b.1.total_cmp(&a.1));
    truth.truncate(5);

    let lat = sqlcm.lat("TopK").unwrap();
    let kept: Vec<(u64, f64)> = lat
        .rows_ordered()
        .iter()
        .map(|r| (r[0].as_i64().unwrap() as u64, r[1].as_f64().unwrap()))
        .collect();
    assert_eq!(kept.len(), truth.len().min(5));
    for ((ks, kd), (ts, td)) in kept.iter().zip(&truth) {
        assert_eq!(ks, ts, "same signatures in the same order");
        assert!((kd - td).abs() < 1e-9, "same max durations");
    }
}

#[test]
fn example4_timer_persist_cycle() {
    use sqlcm_common::ManualClock;
    let (clock, handle) = ManualClock::shared(0);
    let engine = Engine::new(Cfg {
        clock: Some(clock),
        ..Default::default()
    })
    .unwrap();
    engine
        .execute_batch(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);\
             CREATE TABLE summary (qtype TEXT, n INT, at TIMESTAMP);",
        )
        .unwrap();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("ByType")
                .group_by("Query.Query_Type", "QType")
                .aggregate(LatAggFunc::Count, "", "N"),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("collect")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("ByType")),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("persist_daily")
                .on(RuleEvent::TimerAlarm("daily".into()))
                .then(Action::persist_lat("summary", "ByType"))
                .then(Action::reset("ByType")),
        )
        .unwrap();
    sqlcm.set_timer("daily", 1_000_000, -1);

    let mut s = engine.connect("u", "a");
    for i in 0..5 {
        s.execute_params("INSERT INTO t VALUES (?, 0)", &[Value::Int(i)])
            .unwrap();
    }
    handle.advance(1_000_001);
    sqlcm.poll_timers();
    // After the persist+reset, the LAT is empty and the table has one period.
    assert_eq!(sqlcm.lat("ByType").unwrap().row_count(), 0);
    let rows = engine
        .query("SELECT qtype, n FROM summary ORDER BY n DESC")
        .unwrap();
    assert_eq!(rows[0][0], Value::text("INSERT"));
    assert_eq!(rows[0][1], Value::Int(5));

    // Second period.
    s.execute("SELECT COUNT(*) FROM t").unwrap();
    handle.advance(1_000_001);
    sqlcm.poll_timers();
    let n: i64 = engine.query("SELECT COUNT(*) FROM summary").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert!(n >= 2, "two persisted periods, got {n}");
}

#[test]
fn example5_per_user_runaway_governor() {
    let engine = Engine::in_memory();
    let _db = small_db(&engine);
    let sqlcm = Sqlcm::attach(&engine);
    // Cancel queries from user 'intern' running longer than 100 ms.
    sqlcm
        .add_rule(
            Rule::new("governor")
                .on(RuleEvent::TimerAlarm("gov".into()))
                .when("Query.Duration > 0.1 AND Query.User = 'intern'")
                .then(Action::cancel("Query")),
        )
        .unwrap();
    sqlcm.set_timer("gov", 30_000, -1);
    sqlcm.start_timer_thread(std::time::Duration::from_millis(10));

    let mut intern = engine.connect("intern", "adhoc");
    let err = intern
        .execute(
            "SELECT COUNT(*) FROM lineitem a JOIN lineitem b ON a.l_quantity < b.l_quantity \
             JOIN lineitem c ON b.l_quantity < c.l_quantity",
        )
        .unwrap_err();
    assert_eq!(err, Error::Cancelled);

    // Other users are untouched even if slow-ish.
    let mut dba = engine.connect("dba", "adhoc");
    dba.execute("SELECT COUNT(*) FROM lineitem a JOIN orders o ON a.l_orderkey = o.o_orderkey")
        .unwrap();
}

#[test]
fn stored_procedure_code_paths_have_distinct_signatures() {
    let engine = Engine::in_memory();
    let db = small_db(&engine);
    procs::register(&engine).unwrap();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("Paths")
                .group_by("Query.Logical_Signature", "Sig")
                .aggregate(LatAggFunc::Count, "", "N")
                .aggregate(LatAggFunc::Last, "Query.Query_Text", "Text"),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("track_procs")
                .on(RuleEvent::QueryCommit)
                .when("Query.Query_Text LIKE 'EXEC %'")
                .then(Action::insert("Paths")),
        )
        .unwrap();
    let invs = procs::invocations(&db, 60, 0.5, 4);
    procs::run(&engine, &invs).unwrap();
    let lat = sqlcm.lat("Paths").unwrap();
    assert_eq!(
        lat.row_count(),
        2,
        "two code paths → two transaction signatures"
    );
    let total: i64 = lat.rows().iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(total, 60);
}

#[test]
fn eviction_rules_see_lat_columns() {
    let engine = Engine::in_memory();
    engine
        .execute_batch(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);\
             CREATE TABLE graveyard (sig INT, d FLOAT);",
        )
        .unwrap();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("Tiny")
                .group_by("Query.Logical_Signature", "Sig")
                .aggregate(LatAggFunc::Max, "Query.Duration", "D")
                .order_by("D", true)
                .max_rows(1),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("Tiny")),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("bury")
                .on(RuleEvent::LatEviction("Tiny".into()))
                .then(Action::PersistObject {
                    table: "graveyard".into(),
                    class: objects::ClassName::Evicted("Tiny".into()),
                    attrs: vec!["Sig".into(), "D".into()],
                }),
        )
        .unwrap();
    let mut s = engine.connect("u", "a");
    // Distinct templates → distinct signatures → evictions.
    s.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    s.execute("SELECT v FROM t WHERE id = 1").unwrap();
    s.execute("SELECT COUNT(*) FROM t").unwrap();
    let buried: i64 = engine.query("SELECT COUNT(*) FROM graveyard").unwrap()[0][0]
        .as_i64()
        .unwrap();
    assert!(buried >= 2, "all but one template evicted, got {buried}");
}

#[test]
fn table_class_watchdog_rule() {
    use sqlcm_common::ManualClock;
    let (clock, handle) = ManualClock::shared(0);
    let engine = Engine::new(Cfg {
        clock: Some(clock),
        ..Default::default()
    })
    .unwrap();
    engine
        .execute_batch(
            "CREATE TABLE small (id INT PRIMARY KEY, v INT);\
                        CREATE TABLE big (id INT PRIMARY KEY, v INT);",
        )
        .unwrap();
    let mut s = engine.connect("u", "a");
    for i in 0..50 {
        s.execute_params("INSERT INTO big VALUES (?, 0)", &[Value::Int(i)])
            .unwrap();
    }
    s.execute("INSERT INTO small VALUES (1, 0)").unwrap();

    // Schema extension (§2.2): a Timer rule iterating over Table objects.
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .add_rule(
            Rule::new("growth_watchdog")
                .on(RuleEvent::TimerAlarm("watch".into()))
                .when("Table.Row_Count > 10")
                .then(Action::send_mail(
                    "dba@example.org",
                    "table {Table.Name} has {Table.Row_Count} rows",
                )),
        )
        .unwrap();
    sqlcm.set_timer("watch", 1_000, 1);
    handle.advance(1_001);
    sqlcm.poll_timers();
    let mail = sqlcm.outbox().messages();
    assert_eq!(mail.len(), 1, "only the big table trips the watchdog");
    assert!(mail[0].1.contains("big has 50 rows"), "{}", mail[0].1);
}

#[test]
fn in_list_rule_condition() {
    let engine = Engine::in_memory();
    engine
        .execute_batch("CREATE TABLE t (id INT PRIMARY KEY, v INT);")
        .unwrap();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .add_rule(
            Rule::new("writes_only")
                .on(RuleEvent::QueryCommit)
                .when("Query.Query_Type IN ('INSERT', 'UPDATE', 'DELETE')")
                .then(Action::send_mail("audit", "{Query.Query_Type}")),
        )
        .unwrap();
    let mut s = engine.connect("u", "a");
    s.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    s.execute("SELECT * FROM t").unwrap();
    s.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
    let kinds: Vec<String> = sqlcm
        .outbox()
        .messages()
        .into_iter()
        .map(|(_, b)| b)
        .collect();
    assert_eq!(kinds, vec!["INSERT", "UPDATE"], "SELECT filtered out by IN");
}
