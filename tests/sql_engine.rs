//! Integration tests: the host engine's SQL surface, end to end.

use sqlcm_repro::prelude::*;

fn engine() -> Engine {
    let e = Engine::in_memory();
    e.execute_batch(
        "CREATE TABLE dept (id INT PRIMARY KEY, name TEXT);\
         CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, name TEXT, salary FLOAT);",
    )
    .unwrap();
    let mut s = e.connect("setup", "test");
    for (id, name) in [(1, "eng"), (2, "sales"), (3, "empty")] {
        s.execute_params(
            "INSERT INTO dept VALUES (?, ?)",
            &[Value::Int(id), Value::text(name)],
        )
        .unwrap();
    }
    for (id, dept, name, salary) in [
        (1, 1, "ada", 120.0),
        (2, 1, "brian", 100.0),
        (3, 2, "carol", 90.0),
        (4, 2, "dave", 80.0),
        (5, 1, "erin", 110.0),
    ] {
        s.execute_params(
            "INSERT INTO emp VALUES (?, ?, ?, ?)",
            &[
                Value::Int(id),
                Value::Int(dept),
                Value::text(name),
                Value::Float(salary),
            ],
        )
        .unwrap();
    }
    e
}

#[test]
fn join_group_order_limit() {
    let e = engine();
    let rows = e
        .query(
            "SELECT d.name, COUNT(*) AS n, AVG(e.salary) AS avg_sal \
             FROM emp e JOIN dept d ON e.dept_id = d.id \
             GROUP BY d.name ORDER BY avg_sal DESC LIMIT 2",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::text("eng"));
    assert_eq!(rows[0][1], Value::Int(3));
    assert_eq!(rows[0][2], Value::Float(110.0));
    assert_eq!(rows[1][0], Value::text("sales"));
}

#[test]
fn predicates_and_expressions() {
    let e = engine();
    let rows = e
        .query("SELECT name FROM emp WHERE salary * 2 >= 220 ORDER BY name")
        .unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::text("ada")], vec![Value::text("erin")]]
    );
    let rows = e
        .query("SELECT name FROM emp WHERE name LIKE '%a%' AND dept_id <> 2 ORDER BY name")
        .unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::text("ada")], vec![Value::text("brian")]]
    );
}

#[test]
fn update_via_index_and_scan() {
    let e = engine();
    let mut s = e.connect("u", "t");
    // Point update through the clustered key.
    let r = s
        .execute("UPDATE emp SET salary = salary + 5 WHERE id = 3")
        .unwrap();
    assert_eq!(r.rows_affected, 1);
    // Scan update across a predicate.
    let r = s
        .execute("UPDATE emp SET salary = 0 WHERE dept_id = 1")
        .unwrap();
    assert_eq!(r.rows_affected, 3);
    let rows = e.query("SELECT SUM(salary) FROM emp").unwrap();
    assert_eq!(rows[0][0], Value::Float(95.0 + 80.0));
}

#[test]
fn primary_key_change_relocates_row() {
    let e = engine();
    let mut s = e.connect("u", "t");
    s.execute("UPDATE emp SET id = 100 WHERE id = 1").unwrap();
    assert!(e
        .query("SELECT name FROM emp WHERE id = 1")
        .unwrap()
        .is_empty());
    assert_eq!(
        e.query("SELECT name FROM emp WHERE id = 100").unwrap()[0][0],
        Value::text("ada")
    );
    // Collision with an existing key fails and rolls back.
    assert!(s.execute("UPDATE emp SET id = 2 WHERE id = 100").is_err());
    assert_eq!(
        e.query("SELECT COUNT(*) FROM emp").unwrap()[0][0],
        Value::Int(5)
    );
}

#[test]
fn delete_and_reinsert() {
    let e = engine();
    let mut s = e.connect("u", "t");
    assert_eq!(
        s.execute("DELETE FROM emp WHERE dept_id = 2")
            .unwrap()
            .rows_affected,
        2
    );
    assert_eq!(
        e.query("SELECT COUNT(*) FROM emp").unwrap()[0][0],
        Value::Int(3)
    );
    s.execute("INSERT INTO emp VALUES (3, 2, 'carol2', 91.0)")
        .unwrap();
    assert_eq!(
        e.query("SELECT name FROM emp WHERE id = 3").unwrap()[0][0],
        Value::text("carol2")
    );
}

#[test]
fn constraint_violations_are_clean_errors() {
    let e = engine();
    let mut s = e.connect("u", "t");
    assert!(s
        .execute("INSERT INTO emp VALUES (1, 1, 'dup', 1.0)")
        .is_err());
    assert!(s
        .execute("INSERT INTO emp VALUES (NULL, 1, 'nokey', 1.0)")
        .is_err());
    assert!(s.execute("INSERT INTO emp VALUES (9, 1, 'short')").is_err());
    assert!(s.execute("SELECT nope FROM emp").is_err());
    assert!(s.execute("SELECT * FROM missing").is_err());
    // Everything still consistent.
    assert_eq!(
        e.query("SELECT COUNT(*) FROM emp").unwrap()[0][0],
        Value::Int(5)
    );
}

#[test]
fn ddl_invalidates_plan_cache() {
    let e = engine();
    let mut s = e.connect("u", "t");
    s.execute("SELECT COUNT(*) FROM emp").unwrap();
    let before = e.plan_cache_stats();
    assert!(before.misses > 0);
    s.execute("DROP TABLE emp").unwrap();
    assert!(s.execute("SELECT COUNT(*) FROM emp").is_err());
    s.execute("CREATE TABLE emp (id INT PRIMARY KEY, x INT)")
        .unwrap();
    let rows = e.query("SELECT COUNT(*) FROM emp").unwrap();
    assert_eq!(rows[0][0], Value::Int(0), "new table, fresh plan");
}

#[test]
fn secondary_index_backfill_and_consistency() {
    let e = engine();
    let mut s = e.connect("u", "t");
    s.execute("CREATE INDEX emp_by_dept ON emp (dept_id)")
        .unwrap();
    // DML keeps the index in sync (verified via catalog internals).
    s.execute("INSERT INTO emp VALUES (6, 1, 'finn', 70.0)")
        .unwrap();
    s.execute("DELETE FROM emp WHERE id = 2").unwrap();
    let t = e.catalog().table("emp").unwrap();
    let idx = t.indexes.read()[0].clone();
    assert_eq!(
        idx.btree.len().unwrap(),
        5,
        "4 original + 1 insert - 1 delete + 1 = 5"
    );
}

#[test]
fn select_without_from_and_scalar_functions() {
    let e = engine();
    assert_eq!(
        e.query("SELECT 2 + 3 * 4 AS x").unwrap(),
        vec![vec![Value::Int(14)]]
    );
    assert_eq!(
        e.query("SELECT UPPER('abc')").unwrap(),
        vec![vec![Value::text("ABC")]]
    );
}

#[test]
fn transactions_isolate_and_unwind() {
    let e = engine();
    let mut s = e.connect("u", "t");
    s.execute("BEGIN").unwrap();
    s.execute("DELETE FROM emp WHERE id = 1").unwrap();
    s.execute("UPDATE emp SET salary = 1.0 WHERE id = 2")
        .unwrap();
    s.execute("INSERT INTO emp VALUES (50, 1, 'temp', 9.0)")
        .unwrap();
    s.execute("ROLLBACK").unwrap();
    let rows = e.query("SELECT COUNT(*), SUM(salary) FROM emp").unwrap();
    assert_eq!(rows[0][0], Value::Int(5));
    assert_eq!(rows[0][1], Value::Float(500.0));
}

#[test]
fn prepared_reuse_with_parameters() {
    let e = engine();
    let mut s = e.connect("u", "t");
    for want in 1..=5i64 {
        let rows = s
            .execute_params("SELECT name FROM emp WHERE id = ?", &[Value::Int(want)])
            .unwrap();
        assert_eq!(rows.rows.len(), 1);
    }
    let stats = e.plan_cache_stats();
    assert!(
        stats.hits >= 4,
        "template cached across executions: {stats:?}"
    );
}

#[test]
fn in_list_predicates() {
    let e = engine();
    let rows = e
        .query("SELECT name FROM emp WHERE id IN (1, 3, 99) ORDER BY id")
        .unwrap();
    assert_eq!(
        rows,
        vec![vec![Value::text("ada")], vec![Value::text("carol")]]
    );
    let rows = e
        .query("SELECT COUNT(*) FROM emp WHERE dept_id NOT IN (2)")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(3));
    // NULL semantics: x IN (..., NULL) with no match is UNKNOWN → filtered out.
    let rows = e
        .query("SELECT COUNT(*) FROM emp WHERE id IN (99, NULL)")
        .unwrap();
    assert_eq!(rows[0][0], Value::Int(0));
    // Round-trip through the printer.
    let stmt =
        sqlcm_repro::sql::parse_statement("SELECT * FROM emp WHERE id NOT IN (1, 2)").unwrap();
    let again = sqlcm_repro::sql::parse_statement(&stmt.to_string()).unwrap();
    assert_eq!(stmt, again);
}

#[test]
fn explain_shows_plan_and_signatures() {
    let e = engine();
    let r = e
        .query("EXPLAIN SELECT d.name, COUNT(*) FROM emp e JOIN dept d ON e.dept_id = d.id GROUP BY d.name")
        .unwrap();
    let text: Vec<String> = r
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string())
        .collect();
    let joined = text.join("\n");
    assert!(joined.contains("HashJoin"), "{joined}");
    assert!(joined.contains("HashAggregate"), "{joined}");
    assert!(joined.contains("estimated cost"), "{joined}");
    assert!(joined.contains("logical signature"), "{joined}");

    // Point select explains to an index seek.
    let r = e
        .query("EXPLAIN SELECT name FROM emp WHERE id = 3")
        .unwrap();
    let joined: String = r
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(joined.contains("IndexSeek"), "{joined}");

    // DML explains to its template.
    let r = e
        .query("EXPLAIN UPDATE emp SET salary = 0 WHERE id = 1")
        .unwrap();
    let joined: String = r
        .iter()
        .map(|row| row[0].as_str().unwrap().to_string() + "\n")
        .collect();
    assert!(joined.contains("template: update(emp"), "{joined}");
}

#[test]
fn in_list_drives_plan_cache_templates() {
    // Different constants in an IN list share a template; different lengths don't.
    let e = engine();
    let sig = |sql: &str| {
        let r = e.query(&format!("EXPLAIN {sql}")).unwrap();
        r.iter()
            .map(|row| row[0].as_str().unwrap().to_string())
            .find(|l| l.contains("logical signature"))
            .unwrap()
    };
    assert_eq!(
        sig("SELECT name FROM emp WHERE id IN (1, 2)"),
        sig("SELECT name FROM emp WHERE id IN (7, 9)")
    );
    assert_ne!(
        sig("SELECT name FROM emp WHERE id IN (1, 2)"),
        sig("SELECT name FROM emp WHERE id IN (1, 2, 3)")
    );
}
