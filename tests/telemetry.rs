//! Integration tests for the self-telemetry subsystem: per-rule attribution
//! under a multi-threaded workload, snapshot/stats consistency, and the
//! self-monitoring bridge driven through the public facade.

use sqlcm_repro::prelude::*;
use sqlcm_repro::workloads::{mixed, run_queries, tpch};

fn small_db(engine: &Engine) -> sqlcm_repro::workloads::TpchDb {
    tpch::load(
        engine,
        tpch::TpchConfig {
            orders: 200,
            parts: 40,
            customers: 20,
            seed: 7,
        },
    )
    .unwrap()
}

/// Sharded counters and per-rule atomics must attribute exactly under
/// concurrency: with several sessions hammering point selects from different
/// threads, the per-probe and per-rule breakdowns still partition the global
/// `SqlcmStats` with no drops or double counts.
#[test]
fn per_rule_attribution_is_exact_under_concurrency() {
    let engine = Engine::in_memory();
    let db = small_db(&engine);
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.define_topk_duration_lat("TopK", 16).unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("TopK")),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("never_fires")
                .on(RuleEvent::QueryCommit)
                .when("Query.Duration > 3600")
                .then(Action::send_mail("dba", "impossible")),
        )
        .unwrap();

    const THREADS: u64 = 4;
    const PER_THREAD: u32 = 400;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let db = &db;
            scope.spawn(move || {
                let queries = mixed::point_select_workload(db, PER_THREAD, 100 + t);
                run_queries(engine, &queries).unwrap();
            });
        }
    });

    let total = THREADS * PER_THREAD as u64;
    let stats = sqlcm.stats();
    let snap = sqlcm.telemetry();
    assert_eq!(snap.stats, stats, "snapshot taken at quiescence");
    // Only Query.Commit is in the probe-interest mask (two commit rules), so
    // the monitor saw exactly one event per workload query.
    assert_eq!(stats.events, total);
    assert_eq!(
        snap.probes.iter().map(|p| p.events).sum::<u64>(),
        stats.events,
        "per-probe counts partition the event count"
    );
    let commit = snap
        .probes
        .iter()
        .find(|p| p.kind == "Query.Commit")
        .unwrap();
    assert_eq!(commit.events, total);

    // Per-rule: every rule evaluated once per commit; only `track` fired.
    let track = snap.rules.iter().find(|r| r.name == "track").unwrap();
    let never = snap.rules.iter().find(|r| r.name == "never_fires").unwrap();
    assert_eq!(track.evaluations, total);
    assert_eq!(never.evaluations, total);
    assert_eq!(track.fires, total);
    assert_eq!(never.fires, 0);
    assert_eq!(track.actions, total);
    assert_eq!(
        track.evaluations + never.evaluations,
        stats.evaluations,
        "per-rule evaluations partition the global count"
    );
    assert_eq!(track.fires + never.fires, stats.fires);
    // Latency attribution kept pace with the counters.
    assert_eq!(track.condition.count, track.evaluations);
    assert_eq!(track.action.count, track.fires);
    assert_eq!(never.action.count, 0);
    // LAT attribution: one insert per firing.
    let topk = snap.lats.iter().find(|l| l.name == "TopK").unwrap();
    assert_eq!(topk.inserts, total);
    assert!(topk.rows <= 16 && topk.row_high_water >= topk.rows);
    // Flight recorder saw every firing, kept only the last window.
    assert_eq!(snap.flight_total, total);
    assert_eq!(snap.flight_records.len(), 256);
    assert!(snap.flight_records.iter().all(|r| r.rule == "track"));
}

/// The self-monitoring bridge through the facade: telemetry snapshots feed a
/// LAT via a `Monitor.Tick` rule, so the monitor's health history aggregates
/// in its own machinery.
#[test]
fn monitor_health_aggregates_into_a_lat() {
    let engine = Engine::in_memory();
    let db = small_db(&engine);
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("Health")
                .group_by("Monitor.Name", "Who")
                .aggregate(LatAggFunc::Count, "", "Ticks")
                .aggregate(LatAggFunc::Last, "Monitor.Events", "Events")
                .aggregate(LatAggFunc::Max, "Monitor.Eval_P99", "Worst_Eval_P99"),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("observe")
                .on(RuleEvent::QueryCommit)
                .then(Action::send_mail("dba", "c")),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("self_health")
                .on(RuleEvent::MonitorTick)
                .then(Action::insert("Health")),
        )
        .unwrap();

    let queries = mixed::point_select_workload(&db, 50, 3);
    run_queries(&engine, &queries).unwrap();
    sqlcm.poll_self_monitor();
    run_queries(&engine, &queries).unwrap();
    sqlcm.poll_self_monitor();

    let lat = sqlcm.lat("Health").unwrap();
    let rows = lat.rows();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::text("sqlcm"));
    assert_eq!(rows[0][1], Value::Int(2), "two ticks aggregated");
    assert_eq!(rows[0][2], Value::Int(100), "Last(Events) is current");
    // The tick evaluations themselves show up in the snapshot.
    let snap = sqlcm.telemetry();
    let me = snap.rules.iter().find(|r| r.name == "self_health").unwrap();
    assert_eq!(me.event, "Monitor.Tick");
    assert_eq!(me.fires, 2);
}

/// Disabling telemetry mid-run stops clock-based collection but never breaks
/// counter consistency; re-enabling resumes cleanly.
#[test]
fn telemetry_toggle_keeps_counters_consistent() {
    let engine = Engine::in_memory();
    let db = small_db(&engine);
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.define_topk_duration_lat("TopK", 8).unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .then(Action::insert("TopK")),
        )
        .unwrap();

    let queries = mixed::point_select_workload(&db, 100, 11);
    sqlcm.set_telemetry_enabled(false);
    run_queries(&engine, &queries).unwrap();
    let off = sqlcm.telemetry();
    assert_eq!(off.probes.iter().map(|p| p.events).sum::<u64>(), 100);
    assert_eq!(off.rules[0].fires, 100);
    assert!(off.rules[0].condition.is_empty(), "no clocks while off");
    assert_eq!(off.flight_total, 0);

    sqlcm.set_telemetry_enabled(true);
    run_queries(&engine, &queries).unwrap();
    let on = sqlcm.telemetry();
    assert_eq!(on.stats.events, 200);
    assert_eq!(on.rules[0].condition.count, 100, "collection resumed");
    assert_eq!(on.flight_total, 100);
}
