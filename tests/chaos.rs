//! Chaos matrix: seeded fault injection under concurrent event storms.
//!
//! Every entry of a 4 × 4 × 4 matrix — failure rate × deferred-queue depth ×
//! storm shape — drives 8 injector threads through one monitored instance
//! with async external actions on and a seeded [`FaultPlan`] installed, then
//! checks three invariants that must hold under *any* abuse:
//!
//! 1. **The event path never touches a faulted sink.** With async actions on,
//!    `on_event` only enqueues; the per-kind faultable-attempt counters stay
//!    at zero until the pump runs.
//! 2. **Action conservation.** Every enqueued action is accounted for:
//!    `enqueued == executed + dropped_overflow + dropped_exhausted + depth`.
//! 3. **The loss ledger is complete.** Summed ledger counts equal the drop
//!    counters; no loss is silent.
//!
//! Each entry reproduces bit-for-bit from its derived seed (storm sequences
//! and fault schedules are both seeded).

use sqlcm_repro::monitor::{
    Action, FaultKind, FaultPlan, FaultRate, RetryPolicy, Rule, RuleEvent, Sqlcm,
};
use sqlcm_repro::prelude::Engine;
use sqlcm_repro::workloads::storm::{self, StormConfig, StormShape};

const THREADS: u32 = 8;
const EVENTS_PER_THREAD: u32 = 256;

const RATES: [FaultRate; 4] = [
    FaultRate::Never,
    FaultRate::Prob(0.1),
    FaultRate::Prob(0.5),
    FaultRate::Always,
];
const DEPTHS: [usize; 4] = [16, 64, 256, 1024];

struct Entry {
    rate: FaultRate,
    depth: usize,
    shape: StormShape,
    seed: u64,
}

fn matrix() -> Vec<Entry> {
    let mut out = Vec::new();
    for (ri, &rate) in RATES.iter().enumerate() {
        for (di, &depth) in DEPTHS.iter().enumerate() {
            for (si, &shape) in StormShape::ALL.iter().enumerate() {
                out.push(Entry {
                    rate,
                    depth,
                    shape,
                    seed: 0xC4A0_5000 + (ri * 16 + di * 4 + si) as u64,
                });
            }
        }
    }
    out
}

/// Run one matrix entry; returns a context string for assertion messages.
fn run_entry(e: &Entry) {
    let ctx = format!(
        "rate={:?} depth={} shape={} seed={:#x}",
        e.rate,
        e.depth,
        e.shape.as_str(),
        e.seed
    );
    let engine = Engine::in_memory();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.set_async_actions(true);
    sqlcm.set_deferred_queue_capacity(e.depth);
    // Tiny backoff so the drain loop below converges quickly; jitter off so
    // retry timing is exact per seed.
    sqlcm.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        base_backoff_micros: 1,
        max_backoff_micros: 10,
        jitter: 0.0,
    });
    sqlcm.inject_faults(Some(FaultPlan::seeded(e.seed).all(e.rate)));
    sqlcm
        .add_rule(
            Rule::new("mail_slow")
                .on(RuleEvent::QueryCommit)
                .when("Query.Duration > 0.02")
                .then(Action::send_mail("dba", "slow: {Query.Query_Text}")),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("hook_fast")
                .on(RuleEvent::QueryCommit)
                .when("Query.Duration <= 0.02")
                .then(Action::run_external("log fast query")),
        )
        .unwrap();

    let sequences = storm::per_thread_events(
        StormConfig::new(e.shape, EVENTS_PER_THREAD, e.seed),
        THREADS,
    );
    std::thread::scope(|scope| {
        for seq in &sequences {
            let sqlcm = &sqlcm;
            scope.spawn(move || {
                for ev in seq {
                    sqlcm.inject_event(ev);
                }
            });
        }
    });

    // Invariant 1: with async actions on, injection alone never reaches a
    // sink — every faultable attempt happens in the pump, which has not run.
    for kind in [FaultKind::Mail, FaultKind::Command, FaultKind::Persist] {
        assert_eq!(
            sqlcm.faultable_attempts(kind),
            0,
            "[{ctx}] event path touched the {} sink",
            kind.as_str()
        );
    }
    let fires: u64 = ["mail_slow", "hook_fast"]
        .iter()
        .map(|r| sqlcm.rule(r).unwrap().stats().fires)
        .sum();
    assert_eq!(
        sqlcm.telemetry().containment.deferred.enqueued,
        fires,
        "[{ctx}] every firing must enqueue exactly one deferred action"
    );

    // Drain: with Always faults actions exhaust after max_attempts; with
    // probabilistic faults retries eventually succeed. Bounded loop so a
    // regression fails loudly instead of hanging.
    let mut spins = 0;
    while sqlcm.deferred_queue_depth() > 0 {
        sqlcm.pump_deferred_actions();
        spins += 1;
        assert!(spins < 10_000, "[{ctx}] deferred queue failed to drain");
        std::thread::yield_now();
    }

    // Invariant 2: conservation. Nothing vanished, nothing was double-counted.
    let d = sqlcm.telemetry().containment.deferred;
    assert_eq!(
        d.enqueued,
        d.executed + d.dropped_overflow + d.dropped_exhausted + d.queue_depth,
        "[{ctx}] conservation violated: {d:?}"
    );
    assert_eq!(d.queue_depth, 0, "[{ctx}] queue drained");

    // Invariant 3: the ledger accounts for every loss.
    let ledger_total: u64 = sqlcm.loss_ledger().iter().map(|l| l.count).sum();
    assert_eq!(
        ledger_total,
        d.dropped_overflow + d.dropped_exhausted,
        "[{ctx}] loss ledger incomplete"
    );
    assert_eq!(sqlcm.total_action_losses(), ledger_total, "[{ctx}]");

    // Sanity per rate: no faults → no losses and everything executed;
    // always-failing → nothing executed, everything lost or never enqueued.
    match e.rate {
        FaultRate::Never => {
            assert_eq!(d.dropped_exhausted, 0, "[{ctx}] losses without faults");
            assert_eq!(
                d.executed + d.dropped_overflow,
                d.enqueued,
                "[{ctx}] fault-free actions must all execute"
            );
        }
        FaultRate::Always => {
            assert_eq!(d.executed, 0, "[{ctx}] executed through a dead sink");
            assert!(
                d.dropped_exhausted > 0,
                "[{ctx}] always-failing sink must exhaust retries"
            );
        }
        _ => {}
    }
}

#[test]
fn chaos_matrix_64_configs() {
    let entries = matrix();
    assert_eq!(entries.len(), 64);
    for e in &entries {
        run_entry(e);
    }
}

/// A stalling, always-failing sink must not slow the event path: injection
/// happens before any pump, so the stall is only ever paid by the executor.
#[test]
fn stalled_sink_does_not_block_injection() {
    let engine = Engine::in_memory();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.set_async_actions(true);
    sqlcm.inject_faults(Some(
        FaultPlan::seeded(11)
            .all(FaultRate::Always)
            .stall_micros(5_000),
    ));
    sqlcm
        .add_rule(
            Rule::new("blast")
                .on(RuleEvent::QueryCommit)
                .then(Action::send_mail("dba", "x")),
        )
        .unwrap();
    let evs = storm::events(StormConfig::new(StormShape::Uniform, 512, 11));
    let start = std::time::Instant::now();
    for ev in &evs {
        sqlcm.inject_event(ev);
    }
    let inject_elapsed = start.elapsed();
    assert_eq!(sqlcm.faultable_attempts(FaultKind::Mail), 0);
    // 512 events with a 5ms stall each would take ≥ 2.5s if the event path
    // touched the sink; allow two orders of magnitude of headroom for slow CI.
    assert!(
        inject_elapsed < std::time::Duration::from_millis(2_500),
        "injection took {inject_elapsed:?}: event path is paying the sink stall"
    );
    // The pump *does* pay it — and records the failed attempts.
    sqlcm.pump_deferred_actions();
    assert!(sqlcm.faultable_attempts(FaultKind::Mail) > 0);
}

/// Under a dead sink the pump's failures feed the rule's breaker: with an
/// aggressive config the rule trips and gets quarantined out of the plan, and
/// the loss ledger still accounts for everything that was in flight.
#[test]
fn dead_sink_trips_breaker_and_quarantines() {
    use sqlcm_repro::monitor::{BreakerConfig, BreakerState};
    let engine = Engine::in_memory();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm.set_async_actions(true);
    sqlcm.set_breaker_config(BreakerConfig {
        error_threshold: 4,
        min_outcomes: 8,
        ..Default::default()
    });
    sqlcm.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        base_backoff_micros: 1,
        max_backoff_micros: 10,
        jitter: 0.0,
    });
    sqlcm.inject_faults(Some(FaultPlan::seeded(5).command(FaultRate::Always)));
    sqlcm
        .add_rule(
            Rule::new("hook")
                .on(RuleEvent::QueryCommit)
                .then(Action::run_external("doomed")),
        )
        .unwrap();

    let evs = storm::events(StormConfig::new(StormShape::Burst, 64, 5));
    let mut spins = 0;
    for ev in &evs {
        sqlcm.inject_event(ev);
        sqlcm.pump_deferred_actions();
        spins += 1;
        if sqlcm.breaker_state("hook") == Some(BreakerState::Open) {
            break;
        }
        assert!(spins < 64, "breaker never tripped under a dead sink");
    }
    assert_eq!(sqlcm.breaker_state("hook"), Some(BreakerState::Open));
    let t = sqlcm.telemetry().containment;
    assert!(t.breaker_trips >= 1);
    assert_eq!(t.quarantined, vec!["hook".to_string()]);

    // Quarantined: further events stop enqueuing work for the rule.
    let before = sqlcm.telemetry().containment.deferred.enqueued;
    for ev in &evs {
        sqlcm.inject_event(ev);
    }
    assert_eq!(sqlcm.telemetry().containment.deferred.enqueued, before);
}
