//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;
use sqlcm_repro::common::{ManualClock, QueryInfo, Value};
use sqlcm_repro::monitor::objects::query_object;
use sqlcm_repro::monitor::{Lat, LatAggFunc, LatSpec};
use sqlcm_repro::prelude::*;

// ---------------------------------------------------------------- LATs

/// Insert a random stream into a plain LAT; every aggregate must equal the
/// naive recomputation per group.
#[test]
fn lat_aggregates_match_naive_recomputation() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(64));
    runner
        .run(
            &proptest::collection::vec((0u64..6, 1u64..100_000), 1..200),
            |stream| {
                let (clock, _) = ManualClock::shared(0);
                let lat = Lat::new(
                    LatSpec::new("P")
                        .group_by("Query.Logical_Signature", "Sig")
                        .aggregate(LatAggFunc::Count, "", "n")
                        .aggregate(LatAggFunc::Sum, "Query.Duration", "s")
                        .aggregate(LatAggFunc::Avg, "Query.Duration", "a")
                        .aggregate(LatAggFunc::Min, "Query.Duration", "mn")
                        .aggregate(LatAggFunc::Max, "Query.Duration", "mx")
                        .aggregate(LatAggFunc::StdDev, "Query.Duration", "sd")
                        .aggregate(LatAggFunc::First, "Query.Duration", "f")
                        .aggregate(LatAggFunc::Last, "Query.Duration", "l"),
                    clock,
                )
                .unwrap();
                let mut model: std::collections::HashMap<u64, Vec<f64>> =
                    std::collections::HashMap::new();
                for (sig, dur) in &stream {
                    let mut q = QueryInfo::synthetic(1, "q");
                    q.logical_signature = Some(*sig);
                    q.duration_micros = *dur;
                    lat.insert(&query_object(&q)).unwrap();
                    model.entry(*sig).or_default().push(*dur as f64 / 1e6);
                }
                for (sig, vals) in model {
                    let mut probe = QueryInfo::synthetic(1, "q");
                    probe.logical_signature = Some(sig);
                    let row = lat.lookup_for(&query_object(&probe)).unwrap();
                    let n = vals.len() as f64;
                    let sum: f64 = vals.iter().sum();
                    let mean = sum / n;
                    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                    let close = |a: f64, b: f64| (a - b).abs() < 1e-6 * b.abs().max(1.0);
                    prop_assert_eq!(row[1].as_i64().unwrap(), n as i64);
                    prop_assert!(close(row[2].as_f64().unwrap(), sum));
                    prop_assert!(close(row[3].as_f64().unwrap(), mean));
                    prop_assert!(close(
                        row[4].as_f64().unwrap(),
                        vals.iter().cloned().fold(f64::INFINITY, f64::min)
                    ));
                    prop_assert!(close(
                        row[5].as_f64().unwrap(),
                        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    ));
                    prop_assert!(close(row[6].as_f64().unwrap(), var.sqrt()));
                    prop_assert!(close(row[7].as_f64().unwrap(), vals[0]));
                    prop_assert!(close(row[8].as_f64().unwrap(), *vals.last().unwrap()));
                }
                Ok(())
            },
        )
        .unwrap();
}

/// The aging SUM over Δ-blocks must equal the brute-force block model.
#[test]
fn aging_sum_matches_block_model() {
    let window = 10_000u64;
    let block = 1_000u64;
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(64));
    runner
        .run(
            // (advance clock by, value) steps.
            &proptest::collection::vec((0u64..3_000, 1u64..1_000), 1..120),
            |steps| {
                let (clock, handle) = ManualClock::shared(0);
                let lat = Lat::new(
                    LatSpec::new("A")
                        .group_by("Query.Logical_Signature", "Sig")
                        .aggregate(LatAggFunc::Sum, "Query.Duration", "s")
                        .aging(window, block),
                    clock,
                )
                .unwrap();
                let mut events: Vec<(u64, f64)> = Vec::new(); // (ts, value in s)
                let mut now = 0u64;
                for (adv, val) in &steps {
                    handle.advance(*adv);
                    now += adv;
                    let mut q = QueryInfo::synthetic(1, "q");
                    q.logical_signature = Some(1);
                    q.duration_micros = *val;
                    lat.insert(&query_object(&q)).unwrap();
                    events.push((now, *val as f64 / 1e6));
                }
                // Block model: a block [b, b+Δ) is live iff b + Δ > now - t.
                let cutoff = now.saturating_sub(window);
                let expected: f64 = events
                    .iter()
                    .filter(|(ts, _)| {
                        let block_start = ts - ts % block;
                        block_start + block > cutoff
                    })
                    .map(|(_, v)| v)
                    .sum();
                let mut probe = QueryInfo::synthetic(1, "q");
                probe.logical_signature = Some(1);
                let row = lat.lookup_for(&query_object(&probe)).unwrap();
                let got = row[1].as_f64().unwrap_or(0.0);
                prop_assert!(
                    (got - expected).abs() < 1e-9 * expected.abs().max(1.0),
                    "got {got}, expected {expected}"
                );
                Ok(())
            },
        )
        .unwrap();
}

/// A top-k LAT must contain exactly the k largest per-group maxima.
#[test]
fn topk_lat_equals_sorting() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(64));
    runner
        .run(
            &proptest::collection::vec((0u64..50, 1u64..1_000_000), 1..300),
            |stream| {
                let (clock, _) = ManualClock::shared(0);
                let k = 7usize;
                let lat = Lat::new(
                    LatSpec::new("T")
                        .group_by("Query.Logical_Signature", "Sig")
                        .aggregate(LatAggFunc::Max, "Query.Duration", "D")
                        .order_by("D", true)
                        .max_rows(k),
                    clock,
                )
                .unwrap();
                let mut model: std::collections::HashMap<u64, u64> =
                    std::collections::HashMap::new();
                for (sig, dur) in &stream {
                    let mut q = QueryInfo::synthetic(1, "q");
                    q.logical_signature = Some(*sig);
                    q.duration_micros = *dur;
                    lat.insert(&query_object(&q)).unwrap();
                    let e = model.entry(*sig).or_insert(0);
                    *e = (*e).max(*dur);
                }
                let mut expect: Vec<f64> = model.values().map(|&d| d as f64 / 1e6).collect();
                expect.sort_by(|a, b| b.total_cmp(a));
                expect.truncate(k);
                let got: Vec<f64> = lat
                    .rows_ordered()
                    .iter()
                    .map(|r| r[1].as_f64().unwrap())
                    .collect();
                prop_assert_eq!(got, expect);
                Ok(())
            },
        )
        .unwrap();
}

// ---------------------------------------------------------------- signatures

/// Any constants plugged into the same template give the same signature;
/// the probe arrives identically through the full engine pipeline.
#[test]
fn signature_invariant_under_constants_end_to_end() {
    let engine = Engine::in_memory();
    engine
        .execute_batch("CREATE TABLE t (a INT PRIMARY KEY, b INT, c TEXT);")
        .unwrap();
    let sqlcm = Sqlcm::attach(&engine);
    sqlcm
        .define_lat(
            LatSpec::new("Sigs")
                .group_by("Query.Logical_Signature", "Sig")
                .aggregate(LatAggFunc::Count, "", "N"),
        )
        .unwrap();
    sqlcm
        .add_rule(
            Rule::new("track")
                .on(RuleEvent::QueryCommit)
                .when("Query.Query_Type = 'SELECT'")
                .then(Action::insert("Sigs")),
        )
        .unwrap();
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(32));
    runner
        .run(
            &proptest::collection::vec((any::<i32>(), any::<i32>()), 1..20),
            |consts| {
                let mut s = engine.connect("p", "t");
                for (a, b) in &consts {
                    // Same template, different constants, assorted whitespace.
                    s.execute(&format!("SELECT   b FROM t   WHERE a = {a} AND b < {b}"))
                        .unwrap();
                }
                let lat = sqlcm.lat("Sigs").unwrap();
                prop_assert_eq!(
                    lat.row_count(),
                    1,
                    "one template must map to exactly one signature group"
                );
                lat.reset();
                Ok(())
            },
        )
        .unwrap();
}

// ---------------------------------------------------------------- engine

/// Random batches of inserts/deletes through SQL keep COUNT(*) consistent with
/// a model, across clustered and heap tables.
#[test]
fn dml_counts_match_model() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(24));
    runner
        .run(
            &proptest::collection::vec((any::<bool>(), 0i64..40), 1..120),
            |ops| {
                let engine = Engine::in_memory();
                engine
                    .execute_batch(
                        "CREATE TABLE c (id INT PRIMARY KEY, v INT);\
                         CREATE TABLE h (id INT, v INT);",
                    )
                    .unwrap();
                let mut s = engine.connect("p", "t");
                let mut model = std::collections::HashSet::new();
                let mut heap_count = 0i64;
                for (insert, id) in &ops {
                    if *insert {
                        if model.insert(*id) {
                            s.execute_params("INSERT INTO c VALUES (?, 0)", &[Value::Int(*id)])
                                .unwrap();
                        } else {
                            assert!(s
                                .execute_params("INSERT INTO c VALUES (?, 0)", &[Value::Int(*id)],)
                                .is_err());
                        }
                        s.execute_params("INSERT INTO h VALUES (?, 0)", &[Value::Int(*id)])
                            .unwrap();
                        heap_count += 1;
                    } else {
                        let removed = model.remove(id);
                        let r = s
                            .execute_params("DELETE FROM c WHERE id = ?", &[Value::Int(*id)])
                            .unwrap();
                        prop_assert_eq!(r.rows_affected, removed as u64);
                    }
                }
                let n = engine.query("SELECT COUNT(*) FROM c").unwrap()[0][0]
                    .as_i64()
                    .unwrap();
                prop_assert_eq!(n as usize, model.len());
                let nh = engine.query("SELECT COUNT(*) FROM h").unwrap()[0][0]
                    .as_i64()
                    .unwrap();
                prop_assert_eq!(nh, heap_count);
                Ok(())
            },
        )
        .unwrap();
}

/// GROUP BY through SQL equals a hand-rolled aggregation, for random data.
#[test]
fn sql_group_by_matches_model() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config::with_cases(24));
    runner
        .run(
            &proptest::collection::vec((0i64..5, 0i64..1000), 1..100),
            |rows| {
                let engine = Engine::in_memory();
                engine
                    .execute_batch("CREATE TABLE m (id INT PRIMARY KEY, g INT, v INT);")
                    .unwrap();
                let mut s = engine.connect("p", "t");
                for (i, (g, v)) in rows.iter().enumerate() {
                    s.execute_params(
                        "INSERT INTO m VALUES (?, ?, ?)",
                        &[Value::Int(i as i64), Value::Int(*g), Value::Int(*v)],
                    )
                    .unwrap();
                }
                let got = engine
                    .query("SELECT g, COUNT(*), SUM(v) FROM m GROUP BY g ORDER BY g")
                    .unwrap();
                let mut model: std::collections::BTreeMap<i64, (i64, f64)> =
                    std::collections::BTreeMap::new();
                for (g, v) in &rows {
                    let e = model.entry(*g).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += *v as f64;
                }
                prop_assert_eq!(got.len(), model.len());
                for (row, (g, (n, sum))) in got.iter().zip(model) {
                    prop_assert_eq!(row[0].as_i64().unwrap(), g);
                    prop_assert_eq!(row[1].as_i64().unwrap(), n);
                    prop_assert_eq!(row[2].as_f64().unwrap(), sum);
                }
                Ok(())
            },
        )
        .unwrap();
}
